package control

import (
	"encoding/json"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func solvedPlan(t *testing.T, seed int64) (*core.Plan, []traffic.Session) {
	t.Helper()
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 2500, Seed: seed})
	classes := []core.Class{
		{Name: "signature", Scope: core.PerPath, Agg: core.BySession, CPUPerPkt: 1, MemPerItem: 400},
		{Name: "http", Scope: core.PerPath, Agg: core.BySession, Ports: []uint16{80}, Transport: 6, CPUPerPkt: 2, MemPerItem: 600},
		{Name: "scan", Scope: core.PerIngress, Agg: core.BySource, CPUPerPkt: 0.3, MemPerItem: 120},
		{Name: "synflood", Scope: core.PerEgress, Agg: core.ByDestination, Transport: 6, CPUPerPkt: 0.2, MemPerItem: 60},
	}
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	return plan, sessions
}

func TestManifestRoundTripJSON(t *testing.T) {
	plan, _ := solvedPlan(t, 1)
	m, err := ManifestFromPlan(plan, 3, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Node != 3 || back.Epoch != 7 || back.HashKey != 42 {
		t.Fatalf("header lost in round trip: %+v", back)
	}
	if len(back.Assignments) != len(m.Assignments) || len(back.Classes) != len(m.Classes) {
		t.Fatal("payload lost in round trip")
	}
}

func TestManifestFromPlanValidatesNode(t *testing.T) {
	plan, _ := solvedPlan(t, 1)
	if _, err := ManifestFromPlan(plan, 99, 1, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// TestDeciderMatchesPlan: the wire-form decider must agree with the
// planner's own ShouldAnalyze on every (node, class, session) triple —
// the distributed data path enforces exactly the planned assignment.
func TestDeciderMatchesPlan(t *testing.T) {
	plan, sessions := solvedPlan(t, 2)
	const hashKey = 12345
	h := hashing.Hasher{Key: hashKey}
	for node := 0; node < plan.Inst.Topo.N(); node++ {
		m, err := ManifestFromPlan(plan, node, 1, hashKey)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDecider(m)
		for _, s := range sessions[:600] {
			for ci := range plan.Inst.Classes {
				want := plan.ShouldAnalyze(node, ci, s, h)
				got := d.ShouldAnalyze(ci, s)
				if got != want {
					t.Fatalf("node %d class %d session %d: decider=%v plan=%v",
						node, ci, s.ID, got, want)
				}
			}
		}
	}
}

func TestDeciderRejectsUnknownClass(t *testing.T) {
	plan, sessions := solvedPlan(t, 3)
	m, err := ManifestFromPlan(plan, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecider(m)
	if d.ShouldAnalyze(-1, sessions[0]) || d.ShouldAnalyze(99, sessions[0]) {
		t.Fatal("decider accepted out-of-range class")
	}
}

func TestControllerAgentEndToEnd(t *testing.T) {
	plan, sessions := solvedPlan(t, 4)
	ctrl, err := NewController("127.0.0.1:0", 777)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	agent := NewAgent(ctrl.Addr(), 5)

	// Before any plan: epoch 0, manifest fetch fails.
	if e, err := agent.RemoteEpoch(); err != nil || e != 0 {
		t.Fatalf("pre-plan epoch = %d, err %v", e, err)
	}
	if _, err := agent.Sync(); err == nil {
		t.Fatal("expected error fetching manifest before any plan")
	}

	ctrl.UpdatePlan(plan)
	epoch, err := agent.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	d := agent.Decider()
	if d == nil || d.Epoch() != 1 {
		t.Fatal("decider not installed")
	}

	// Decisions over the wire match the plan.
	h := hashing.Hasher{Key: 777}
	for _, s := range sessions[:300] {
		for ci := range plan.Inst.Classes {
			if d.ShouldAnalyze(ci, s) != plan.ShouldAnalyze(5, ci, s, h) {
				t.Fatalf("wire decision diverged for session %d class %d", s.ID, ci)
			}
		}
	}

	// SyncIfStale: no-op at the same epoch, refetch after an update.
	if fetched, err := agent.SyncIfStale(); err != nil || fetched {
		t.Fatalf("SyncIfStale at current epoch: fetched=%v err=%v", fetched, err)
	}
	ctrl.UpdatePlan(plan)
	if fetched, err := agent.SyncIfStale(); err != nil || !fetched {
		t.Fatalf("SyncIfStale after update: fetched=%v err=%v", fetched, err)
	}
	if agent.Decider().Epoch() != 2 {
		t.Fatalf("decider epoch = %d, want 2", agent.Decider().Epoch())
	}
}

func TestControllerConcurrentAgents(t *testing.T) {
	plan, _ := solvedPlan(t, 5)
	ctrl, err := NewController("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	n := plan.Inst.Topo.N()
	var wg sync.WaitGroup
	errs := make(chan error, n*4)
	for round := 0; round < 4; round++ {
		for node := 0; node < n; node++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				a := NewAgent(ctrl.Addr(), node)
				if _, err := a.Sync(); err != nil {
					errs <- err
				}
			}(node)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestControllerMalformedRequests(t *testing.T) {
	plan, _ := solvedPlan(t, 6)
	ctrl, err := NewController("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	// Unknown op.
	a := NewAgent(ctrl.Addr(), 0)
	if _, _, err := a.roundTrip(request{Op: "bogus"}); err == nil {
		t.Fatal("expected error for unknown op")
	}
	// Out-of-range node.
	bad := NewAgent(ctrl.Addr(), 10_000)
	if _, err := bad.Sync(); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
	// Controller must still serve after bad requests.
	good := NewAgent(ctrl.Addr(), 0)
	if _, err := good.Sync(); err != nil {
		t.Fatalf("controller wedged after malformed traffic: %v", err)
	}
}

func TestAgentWatchDeliversEpochUpdates(t *testing.T) {
	plan, _ := solvedPlan(t, 7)
	ctrl, err := NewController("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	agent := NewAgent(ctrl.Addr(), 1)
	if _, err := agent.Sync(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	updates := agent.Watch(5*time.Millisecond, stop)

	ctrl.UpdatePlan(plan) // epoch 2
	select {
	case e := <-updates:
		if e != 2 {
			t.Fatalf("update epoch %d, want 2", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no update delivered within 2s")
	}
	close(stop)
	// Channel closes after stop.
	for range updates {
	}
}

// waitCounter polls an obs counter until it reaches at least want or the
// deadline passes — serve() runs on the controller's accept goroutines,
// so counter advances are asynchronous with the client's view.
func waitCounter(t *testing.T, c *obs.Counter, want int64) int64 {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v := c.Value(); v >= want || time.Now().After(deadline) {
			return v
		}
		time.Sleep(time.Millisecond)
	}
}

// TestControllerErrorPathCounters drives every controller error path and
// asserts the badReqC/manifestErrC observability advances for each:
// unknown op, manifest before any plan, out-of-range node, a connection
// closed mid-request, and an oversized request line.
func TestControllerErrorPathCounters(t *testing.T) {
	metrics := obs.New()
	ctrl, err := NewControllerOpts("127.0.0.1:0", ControllerOptions{HashKey: 1, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	badReqC := metrics.Counter("control.requests_bad")
	manifestErrC := metrics.Counter("control.manifest_errors")

	// Manifest request before any plan is installed.
	a := NewAgent(ctrl.Addr(), 0)
	if _, err := a.Sync(); err == nil {
		t.Fatal("expected error fetching manifest before any plan")
	}
	if got := waitCounter(t, manifestErrC, 1); got != 1 {
		t.Fatalf("manifest_errors = %d after no-plan fetch, want 1", got)
	}

	plan, _ := solvedPlan(t, 11)
	ctrl.UpdatePlan(plan)

	// Unknown op.
	if _, _, err := a.roundTrip(request{Op: "bogus"}); err == nil {
		t.Fatal("expected error for unknown op")
	}
	if got := waitCounter(t, badReqC, 1); got != 1 {
		t.Fatalf("requests_bad = %d after unknown op, want 1", got)
	}

	// Manifest request for an out-of-range node.
	if _, err := NewAgent(ctrl.Addr(), 10_000).Sync(); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
	if got := waitCounter(t, manifestErrC, 2); got != 2 {
		t.Fatalf("manifest_errors = %d after out-of-range node, want 2", got)
	}

	// Connection closed mid-request: partial line, no newline.
	conn, err := net.Dial("tcp", ctrl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"op":"ep`)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if got := waitCounter(t, badReqC, 2); got != 2 {
		t.Fatalf("requests_bad = %d after mid-request close, want 2", got)
	}

	// The controller must still serve after all of the above.
	if _, err := NewAgent(ctrl.Addr(), 0).Sync(); err != nil {
		t.Fatalf("controller wedged after error-path traffic: %v", err)
	}
}

// TestControllerBoundsRequestLine streams a line longer than the request
// cap and expects a malformed-request rejection instead of unbounded
// buffering.
func TestControllerBoundsRequestLine(t *testing.T) {
	metrics := obs.New()
	ctrl, err := NewControllerOpts("127.0.0.1:0", ControllerOptions{HashKey: 1, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	conn, err := net.Dial("tcp", ctrl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	// One byte past the cap, no newline: the controller must stop
	// reading and reject rather than buffer on.
	junk := make([]byte, maxRequestLine+1)
	for i := range junk {
		junk[i] = 'a'
	}
	if _, err := conn.Write(junk); err != nil {
		t.Fatalf("writing oversized line: %v", err)
	}
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("decoding rejection: %v", err)
	}
	if resp.Err != "malformed request" {
		t.Fatalf("resp.Err = %q, want %q", resp.Err, "malformed request")
	}
	if got := waitCounter(t, metrics.Counter("control.requests_bad"), 1); got != 1 {
		t.Fatalf("requests_bad = %d after oversized line, want 1", got)
	}
}

// TestAgentOptions: configured timeouts must be honored (a black-holed
// exchange fails in ~RPCTimeout, not the 10s default) and the agent-side
// counters must advance.
func TestAgentOptions(t *testing.T) {
	plan, _ := solvedPlan(t, 12)
	ctrl, err := NewController("127.0.0.1:0", 9)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	metrics := obs.New()
	blackhole := func(network, addr string, timeout time.Duration) (net.Conn, error) {
		client, server := net.Pipe()
		go func() {
			_, _ = io.Copy(io.Discard, server)
			_ = server.Close()
		}()
		return client, nil
	}
	a := NewAgentOpts(ctrl.Addr(), 0, AgentOptions{
		DialTimeout: 100 * time.Millisecond,
		RPCTimeout:  50 * time.Millisecond,
		Dial:        blackhole,
		Metrics:     metrics,
	})
	start := time.Now()
	if _, err := a.RemoteEpoch(); err == nil {
		t.Fatal("expected timeout through black-holed dialer")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("RPCTimeout not honored: exchange took %v", elapsed)
	}
	if got := metrics.Counter("control.agent_requests").Value(); got != 1 {
		t.Fatalf("agent_requests = %d, want 1", got)
	}
	if got := metrics.Counter("control.agent_errors").Value(); got != 1 {
		t.Fatalf("agent_errors = %d, want 1", got)
	}
	if got := metrics.Counter("control.agent_timeouts").Value(); got != 1 {
		t.Fatalf("agent_timeouts = %d, want 1", got)
	}

	// The same agent with a real dialer works and leaves timeouts alone.
	real := NewAgentOpts(ctrl.Addr(), 0, AgentOptions{Metrics: metrics})
	if _, err := real.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Counter("control.agent_timeouts").Value(); got != 1 {
		t.Fatalf("agent_timeouts advanced on a healthy exchange: %d", got)
	}
}

// TestControllerServesProvidedListener: the Listener option must be used
// as-is — the seam chaos.Gate interposes at.
func TestControllerServesProvidedListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewControllerOpts("ignored:0", ControllerOptions{HashKey: 3, Listener: ln})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if ctrl.Addr() != ln.Addr().String() {
		t.Fatalf("controller addr %s != provided listener addr %s", ctrl.Addr(), ln.Addr())
	}
	if e, err := NewAgent(ctrl.Addr(), 0).RemoteEpoch(); err != nil || e != 0 {
		t.Fatalf("epoch through provided listener: %d, %v", e, err)
	}
}

// TestDeciderCoverageHelpers: CoversUnit must agree with the manifest's
// wire ranges, and AssignedWidth with their total width.
func TestDeciderCoverageHelpers(t *testing.T) {
	plan, _ := solvedPlan(t, 13)
	m, err := ManifestFromPlan(plan, 2, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecider(m)
	var want float64
	for _, a := range m.Assignments {
		for _, r := range a.Ranges {
			want += r.Hi - r.Lo
			mid := (r.Lo + r.Hi) / 2
			if !d.CoversUnit(a.Class, a.Unit, mid) {
				t.Fatalf("CoversUnit(%d, %v, %v) = false inside an assigned range", a.Class, a.Unit, mid)
			}
		}
	}
	if got := d.AssignedWidth(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("AssignedWidth = %v, want %v", got, want)
	}
	if d.CoversUnit(-1, [2]int{0, 0}, 0.5) {
		t.Fatal("CoversUnit accepted an unknown assignment")
	}
}
