package control

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func solvedPlan(t *testing.T, seed int64) (*core.Plan, []traffic.Session) {
	t.Helper()
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 2500, Seed: seed})
	classes := []core.Class{
		{Name: "signature", Scope: core.PerPath, Agg: core.BySession, CPUPerPkt: 1, MemPerItem: 400},
		{Name: "http", Scope: core.PerPath, Agg: core.BySession, Ports: []uint16{80}, Transport: 6, CPUPerPkt: 2, MemPerItem: 600},
		{Name: "scan", Scope: core.PerIngress, Agg: core.BySource, CPUPerPkt: 0.3, MemPerItem: 120},
		{Name: "synflood", Scope: core.PerEgress, Agg: core.ByDestination, Transport: 6, CPUPerPkt: 0.2, MemPerItem: 60},
	}
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	return plan, sessions
}

func TestManifestRoundTripJSON(t *testing.T) {
	plan, _ := solvedPlan(t, 1)
	m, err := ManifestFromPlan(plan, 3, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Node != 3 || back.Epoch != 7 || back.HashKey != 42 {
		t.Fatalf("header lost in round trip: %+v", back)
	}
	if len(back.Assignments) != len(m.Assignments) || len(back.Classes) != len(m.Classes) {
		t.Fatal("payload lost in round trip")
	}
}

func TestManifestFromPlanValidatesNode(t *testing.T) {
	plan, _ := solvedPlan(t, 1)
	if _, err := ManifestFromPlan(plan, 99, 1, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// TestDeciderMatchesPlan: the wire-form decider must agree with the
// planner's own ShouldAnalyze on every (node, class, session) triple —
// the distributed data path enforces exactly the planned assignment.
func TestDeciderMatchesPlan(t *testing.T) {
	plan, sessions := solvedPlan(t, 2)
	const hashKey = 12345
	h := hashing.Hasher{Key: hashKey}
	for node := 0; node < plan.Inst.Topo.N(); node++ {
		m, err := ManifestFromPlan(plan, node, 1, hashKey)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDecider(m)
		for _, s := range sessions[:600] {
			for ci := range plan.Inst.Classes {
				want := plan.ShouldAnalyze(node, ci, s, h)
				got := d.ShouldAnalyze(ci, s)
				if got != want {
					t.Fatalf("node %d class %d session %d: decider=%v plan=%v",
						node, ci, s.ID, got, want)
				}
			}
		}
	}
}

func TestDeciderRejectsUnknownClass(t *testing.T) {
	plan, sessions := solvedPlan(t, 3)
	m, err := ManifestFromPlan(plan, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecider(m)
	if d.ShouldAnalyze(-1, sessions[0]) || d.ShouldAnalyze(99, sessions[0]) {
		t.Fatal("decider accepted out-of-range class")
	}
}

func TestControllerAgentEndToEnd(t *testing.T) {
	plan, sessions := solvedPlan(t, 4)
	ctrl, err := NewController("127.0.0.1:0", 777)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	agent := NewAgent(ctrl.Addr(), 5)

	// Before any plan: epoch 0, manifest fetch fails.
	if e, err := agent.RemoteEpoch(); err != nil || e != 0 {
		t.Fatalf("pre-plan epoch = %d, err %v", e, err)
	}
	if _, err := agent.Sync(); err == nil {
		t.Fatal("expected error fetching manifest before any plan")
	}

	ctrl.UpdatePlan(plan)
	epoch, err := agent.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	d := agent.Decider()
	if d == nil || d.Epoch() != 1 {
		t.Fatal("decider not installed")
	}

	// Decisions over the wire match the plan.
	h := hashing.Hasher{Key: 777}
	for _, s := range sessions[:300] {
		for ci := range plan.Inst.Classes {
			if d.ShouldAnalyze(ci, s) != plan.ShouldAnalyze(5, ci, s, h) {
				t.Fatalf("wire decision diverged for session %d class %d", s.ID, ci)
			}
		}
	}

	// SyncIfStale: no-op at the same epoch, refetch after an update.
	if fetched, err := agent.SyncIfStale(); err != nil || fetched {
		t.Fatalf("SyncIfStale at current epoch: fetched=%v err=%v", fetched, err)
	}
	ctrl.UpdatePlan(plan)
	if fetched, err := agent.SyncIfStale(); err != nil || !fetched {
		t.Fatalf("SyncIfStale after update: fetched=%v err=%v", fetched, err)
	}
	if agent.Decider().Epoch() != 2 {
		t.Fatalf("decider epoch = %d, want 2", agent.Decider().Epoch())
	}
}

func TestControllerConcurrentAgents(t *testing.T) {
	plan, _ := solvedPlan(t, 5)
	ctrl, err := NewController("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	n := plan.Inst.Topo.N()
	var wg sync.WaitGroup
	errs := make(chan error, n*4)
	for round := 0; round < 4; round++ {
		for node := 0; node < n; node++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				a := NewAgent(ctrl.Addr(), node)
				if _, err := a.Sync(); err != nil {
					errs <- err
				}
			}(node)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestControllerMalformedRequests(t *testing.T) {
	plan, _ := solvedPlan(t, 6)
	ctrl, err := NewController("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	// Unknown op.
	a := NewAgent(ctrl.Addr(), 0)
	if _, err := a.roundTrip(request{Op: "bogus"}); err == nil {
		t.Fatal("expected error for unknown op")
	}
	// Out-of-range node.
	bad := NewAgent(ctrl.Addr(), 10_000)
	if _, err := bad.Sync(); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
	// Controller must still serve after bad requests.
	good := NewAgent(ctrl.Addr(), 0)
	if _, err := good.Sync(); err != nil {
		t.Fatalf("controller wedged after malformed traffic: %v", err)
	}
}

func TestAgentWatchDeliversEpochUpdates(t *testing.T) {
	plan, _ := solvedPlan(t, 7)
	ctrl, err := NewController("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	agent := NewAgent(ctrl.Addr(), 1)
	if _, err := agent.Sync(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	updates := agent.Watch(5*time.Millisecond, stop)

	ctrl.UpdatePlan(plan) // epoch 2
	select {
	case e := <-updates:
		if e != 2 {
			t.Fatalf("update epoch %d, want 2", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no update delivered within 2s")
	}
	close(stop)
	// Channel closes after stop.
	for range updates {
	}
}
