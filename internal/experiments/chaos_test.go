package experiments

import (
	"reflect"
	"testing"
)

// The chaos runner must be deterministic across worker counts like every
// other experiment grid — its fault injection is seeded per agent, so the
// pool size is pure execution detail.
func TestChaosWorkersDeterminism(t *testing.T) {
	serial, err := Chaos(Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := Chaos(Config{Quick: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("Chaos rows depend on worker count:\nserial: %+v\nfanned: %+v", serial, fanned)
	}
}

// The r=2 scenario is the Section 2.5 guarantee on trial: with failures
// capped at r-1, worst coverage must hold at exactly 1 in every epoch.
func TestChaosRedundantScenarioHoldsCoverage(t *testing.T) {
	rows, err := Chaos(Config{Quick: true, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	sawR2, sawFailure := false, false
	for _, r := range rows {
		if r.Scenario != "redundant_r2" {
			continue
		}
		sawR2 = true
		if r.DownNodes > 0 {
			sawFailure = true
		}
		// Dark agents (no manifest) are a control-plane loss, not a
		// redundancy failure; the guarantee applies when all survivors
		// hold manifests.
		if r.Dark == 0 && r.WorstCoverage != 1 {
			t.Fatalf("epoch %d: %d down nodes within redundancy but worst coverage %v",
				r.Epoch, r.DownNodes, r.WorstCoverage)
		}
	}
	if !sawR2 {
		t.Fatal("no redundant_r2 rows")
	}
	if !sawFailure {
		t.Fatal("r=2 scenario exercised no node failures; the guarantee went untested")
	}
}
