package experiments

import (
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/traffic"
)

// FlashCrowdScenario ramps every pair touching one ingress through a
// triangular volume spike: concentrated overload that a global burst
// factor cannot model, aimed at the governor's per-node shed decision on
// exactly the nodes that carry the hot ingress's paths.
type FlashCrowdScenario struct {
	Cfg traffic.FlashConfig
}

// NewFlashCrowd builds the catalog-default flash crowd: a 5x peak on
// ingress 0, centered in the run.
func NewFlashCrowd(epochs int) *FlashCrowdScenario {
	dur := epochs / 2
	if dur < 2 {
		dur = 2
	}
	return &FlashCrowdScenario{Cfg: traffic.FlashConfig{
		Ingress: 0, Peak: 5, Start: 1 + epochs/4, Duration: dur,
	}}
}

// Name implements Scenario.
func (s *FlashCrowdScenario) Name() string { return "flashcrowd" }

// Step implements Scenario.
func (s *FlashCrowdScenario) Step(env *cluster.ScenarioEnv) cluster.Stimulus {
	return cluster.Stimulus{
		PairScale: traffic.FlashFactors(env.Pairs, env.Epoch, s.Cfg),
	}
}
