package experiments

import (
	"fmt"
	"sort"
	"strings"

	"nwdeploy/internal/cluster"
)

// Scenario is the experiments-level alias for the cluster runtime's driver
// interface: a seeded, epoch-stepped mutator of traffic, faults, and
// topology occupancy. Every concrete scenario in this package is a pure
// function of (its configuration, the env), so runs replay bit-for-bit.
type Scenario = cluster.ScenarioDriver

// composed merges several scenarios into one driver.
type composed struct {
	parts []Scenario
}

// Compose runs several scenarios against the same cluster at once, merging
// their per-epoch stimuli: pair scales multiply, injected sessions
// concatenate in part order, crash/drain sets union, and a controller
// outage from any part takes the controller down. Each part sees the same
// env (published state), not each other's stimuli — they are independent
// pressures, which is what makes any mix of drivers runnable against the
// runtime unchanged.
func Compose(parts ...Scenario) Scenario {
	flat := make([]Scenario, 0, len(parts))
	for _, p := range parts {
		if c, ok := p.(*composed); ok {
			flat = append(flat, c.parts...)
			continue
		}
		flat = append(flat, p)
	}
	return &composed{parts: flat}
}

// Name implements Scenario.
func (c *composed) Name() string {
	names := make([]string, len(c.parts))
	for i, p := range c.parts {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

// Step implements Scenario.
func (c *composed) Step(env *cluster.ScenarioEnv) cluster.Stimulus {
	var out cluster.Stimulus
	downs := map[int]bool{}
	drains := map[int]bool{}
	for _, p := range c.parts {
		st := p.Step(env)
		if st.PairScale != nil {
			if out.PairScale == nil {
				out.PairScale = make([]float64, len(st.PairScale))
				for k := range out.PairScale {
					out.PairScale[k] = 1
				}
			}
			for k := range st.PairScale {
				out.PairScale[k] *= st.PairScale[k]
			}
		}
		out.Inject = append(out.Inject, st.Inject...)
		for _, j := range st.Faults.DownNodes {
			downs[j] = true
		}
		for _, j := range st.Drains {
			drains[j] = true
		}
		out.Faults.ControllerDown = out.Faults.ControllerDown || st.Faults.ControllerDown
	}
	out.Faults.DownNodes = sortedKeys(downs)
	out.Drains = sortedKeys(drains)
	return out
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for j := range m {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// NewScenario resolves a scenario spec — one of "diurnal", "flashcrowd",
// "synflood", "maintenance", "adversary", or a "+"-joined composition like
// "maintenance+flashcrowd" — into a driver with catalog-default knobs,
// derived deterministically from the given seed and horizon. It is the
// resolver behind cmd/cluster -scenario.
func NewScenario(spec string, seed int64, epochs int) (Scenario, error) {
	names := strings.Split(spec, "+")
	parts := make([]Scenario, 0, len(names))
	for _, name := range names {
		var s Scenario
		switch strings.TrimSpace(name) {
		case "diurnal":
			s = NewDiurnal(seed, epochs)
		case "flashcrowd":
			s = NewFlashCrowd(epochs)
		case "synflood":
			s = NewSYNFlood(seed, epochs)
		case "maintenance":
			s = NewMaintenance(epochs)
		case "adversary":
			s = NewAdaptiveAdversary(seed)
		default:
			return nil, fmt.Errorf("experiments: unknown scenario %q (want diurnal, flashcrowd, synflood, maintenance, adversary, or a + composition)", name)
		}
		parts = append(parts, s)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Compose(parts...), nil
}
