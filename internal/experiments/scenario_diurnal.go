package experiments

import (
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/traffic"
)

// DiurnalScenario modulates the gravity traffic matrix with the seeded
// per-pair diurnal sinusoid: slow, predictable drift that exercises the
// EWMA drift detector and the warm-replan path without any adversarial
// pressure. Pure traffic mutator — no faults, no injections.
type DiurnalScenario struct {
	Cfg traffic.DiurnalConfig
}

// NewDiurnal builds the catalog-default diurnal scenario: amplitude 0.45
// with the cycle folded into the run horizon so a short run still sweeps a
// full day.
func NewDiurnal(seed int64, epochs int) *DiurnalScenario {
	period := epochs
	if period < 2 {
		period = 2
	}
	return &DiurnalScenario{Cfg: traffic.DiurnalConfig{
		Period: period, Amplitude: 0.45, Seed: seed,
	}}
}

// Name implements Scenario.
func (s *DiurnalScenario) Name() string { return "diurnal" }

// Step implements Scenario.
func (s *DiurnalScenario) Step(env *cluster.ScenarioEnv) cluster.Stimulus {
	return cluster.Stimulus{
		PairScale: traffic.DiurnalFactors(len(env.Pairs), env.Epoch, s.Cfg),
	}
}
