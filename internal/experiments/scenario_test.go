package experiments

import (
	"reflect"
	"testing"

	"nwdeploy/internal/chaos"
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/traffic"
)

// fakeScenario returns a fixed stimulus every epoch.
type fakeScenario struct {
	name string
	st   cluster.Stimulus
}

func (f *fakeScenario) Name() string                               { return f.name }
func (f *fakeScenario) Step(*cluster.ScenarioEnv) cluster.Stimulus { return f.st }

func TestComposeMergesStimuli(t *testing.T) {
	a := &fakeScenario{name: "a", st: cluster.Stimulus{
		PairScale: []float64{2, 1, 0.5},
		Inject:    []traffic.Session{{ID: 1}},
		Faults:    chaos.EpochFaults{DownNodes: []int{3, 5}},
		Drains:    []int{2},
	}}
	b := &fakeScenario{name: "b", st: cluster.Stimulus{
		PairScale: []float64{3, 1, 4},
		Inject:    []traffic.Session{{ID: 2}, {ID: 3}},
		Faults:    chaos.EpochFaults{DownNodes: []int{5, 1}, ControllerDown: true},
		Drains:    []int{2, 7},
	}}
	env := &cluster.ScenarioEnv{Epoch: 1, Epochs: 4, Nodes: 8}
	c := Compose(a, b)
	if c.Name() != "a+b" {
		t.Fatalf("composed name %q", c.Name())
	}
	st := c.Step(env)
	if want := []float64{6, 1, 2}; !reflect.DeepEqual(st.PairScale, want) {
		t.Fatalf("pair scales %v, want elementwise product %v", st.PairScale, want)
	}
	if len(st.Inject) != 3 || st.Inject[0].ID != 1 || st.Inject[2].ID != 3 {
		t.Fatalf("injections %v, want concatenation in part order", st.Inject)
	}
	if want := []int{1, 3, 5}; !reflect.DeepEqual(st.Faults.DownNodes, want) {
		t.Fatalf("down nodes %v, want sorted union %v", st.Faults.DownNodes, want)
	}
	if want := []int{2, 7}; !reflect.DeepEqual(st.Drains, want) {
		t.Fatalf("drains %v, want sorted union %v", st.Drains, want)
	}
	if !st.Faults.ControllerDown {
		t.Fatal("controller outage from one part must take the composition down")
	}
	// One-sided pair scales: parts without a scale contribute 1.
	onlyA := Compose(a, &fakeScenario{name: "quiet"})
	if st := onlyA.Step(env); !reflect.DeepEqual(st.PairScale, a.st.PairScale) {
		t.Fatalf("one-sided compose scales %v, want %v", st.PairScale, a.st.PairScale)
	}
	// Composing compositions flattens.
	if got := Compose(c, a).Name(); got != "a+b+a" {
		t.Fatalf("nested compose name %q, want a+b+a", got)
	}
}

func TestNewScenarioResolves(t *testing.T) {
	for _, spec := range []string{"diurnal", "flashcrowd", "synflood", "maintenance", "adversary"} {
		s, err := NewScenario(spec, 7, 8)
		if err != nil {
			t.Fatalf("NewScenario(%q): %v", spec, err)
		}
		if s.Name() != spec {
			t.Fatalf("NewScenario(%q).Name() = %q", spec, s.Name())
		}
	}
	s, err := NewScenario("maintenance+flashcrowd", 7, 8)
	if err != nil {
		t.Fatalf("composition: %v", err)
	}
	if s.Name() != "maintenance+flashcrowd" {
		t.Fatalf("composition name %q", s.Name())
	}
	if _, err := NewScenario("nosuch", 7, 8); err == nil {
		t.Fatal("unknown scenario spec must error")
	}
}

// Traffic-only drivers are pure functions of (config, env): same env, same
// stimulus, and the periodic/windowed structure shows through.
func TestTrafficScenarioStepsDeterministic(t *testing.T) {
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	env := func(epoch int) *cluster.ScenarioEnv {
		return &cluster.ScenarioEnv{Epoch: epoch, Epochs: 8, Nodes: 4, Pairs: pairs}
	}
	for _, s := range []Scenario{NewDiurnal(9, 8), NewFlashCrowd(8), NewMaintenance(8), NewSYNFlood(9, 8)} {
		for e := 1; e <= 8; e++ {
			a, b := s.Step(env(e)), s.Step(env(e))
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s epoch %d: repeated Step differs", s.Name(), e)
			}
		}
	}
	// The flood only fires inside its window and carries enough distinct
	// connections to cross the SYNFlood threshold.
	fl := NewSYNFlood(9, 8)
	if st := fl.Step(env(1)); len(st.Inject) != 0 {
		t.Fatalf("flood injected %d sessions before its window", len(st.Inject))
	}
	st := fl.Step(env(fl.Start))
	if len(st.Inject) <= 500 {
		t.Fatalf("flood injected %d sessions, need >500 to cross the module threshold", len(st.Inject))
	}
	victims := map[uint32]bool{}
	for _, s := range st.Inject {
		victims[s.Tuple.DstIP] = true
	}
	if len(victims) != 1 {
		t.Fatalf("flood hit %d destination addresses, want 1 victim", len(victims))
	}
	// Rolling maintenance drains the whole fleet over the run, one node at
	// a time.
	mt := NewMaintenance(8)
	seen := map[int]bool{}
	for e := 1; e <= 8; e++ {
		st := mt.Step(env(e))
		if len(st.Drains) > 1 {
			t.Fatalf("maintenance drained %v in one epoch, group is 1", st.Drains)
		}
		for _, j := range st.Drains {
			seen[j] = true
		}
	}
	if len(seen) < 4 {
		t.Fatalf("rolling drains visited %d of 4 nodes", len(seen))
	}
}

// The adversary scenario needs the live env (it reads published
// manifests), so determinism is checked end to end: two identical runs
// replay bit-for-bit, and the crafted sessions actually flow.
func TestAdversaryScenarioDeterministic(t *testing.T) {
	run := func() *cluster.ScenarioReport {
		rep, err := cluster.RunScenario(cluster.ScenarioConfig{
			Driver:   NewAdaptiveAdversary(43),
			Sessions: 400, TrafficSeed: 17, Seed: 23,
			Epochs: 3, Redundancy: 2, Governor: true, Probes: 300,
		})
		if err != nil {
			t.Fatalf("RunScenario: %v", err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("adversary runs with the same seed differ")
	}
	if r1.TotalInjected == 0 {
		t.Fatal("adversary crafted no sessions")
	}
	// The r=1 floor is the defense the adversary is probing: with every
	// copy-0 slice deployed and no faults, manifest steering finds no hole.
	if r1.TotalEvaded != 0 {
		t.Fatalf("%d of %d crafted sessions evaded an intact floor", r1.TotalEvaded, r1.TotalInjected)
	}
}

// The grid must be byte-identical at any worker count — the experiments
// half of the same-seed determinism contract.
func TestScenariosGridWorkersDeterminism(t *testing.T) {
	r1, err := Scenarios(Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatalf("Scenarios(workers=1): %v", err)
	}
	r4, err := Scenarios(Config{Quick: true, Workers: 4})
	if err != nil {
		t.Fatalf("Scenarios(workers=4): %v", err)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("grid rows differ across worker counts:\n  w1: %+v\n  w4: %+v", r1, r4)
	}
	if len(r1) != 6 {
		t.Fatalf("grid has %d rows, want 6", len(r1))
	}
	for _, row := range r1 {
		if !row.FloorHeld {
			t.Errorf("%s: coverage floor breached without post-mortem accounting", row.Scenario)
		}
		if row.SLOViolations != 0 {
			t.Errorf("%s: %d SLO violations under the catalog thresholds", row.Scenario, row.SLOViolations)
		}
	}
	byName := map[string]ScenarioRow{}
	for _, row := range r1 {
		byName[row.Scenario] = row
	}
	if row := byName["synflood"]; row.Alerts == 0 || row.Injected == 0 {
		t.Errorf("synflood: alerts %d injected %d, want the flood visible in the data plane", row.Alerts, row.Injected)
	}
	if row := byName["adversary"]; row.RegretSlope >= 1 {
		t.Errorf("adversary: cumulative regret slope %v, want sublinear (<1)", row.RegretSlope)
	} else if row.Injected == 0 {
		t.Errorf("adversary: no crafted sessions reached the runtime")
	}
	if row := byName["maintenance+flashcrowd"]; row.ShedFraction == 0 {
		t.Errorf("composed cell shows no shed; composition did not carry the flash crowd")
	}
}
