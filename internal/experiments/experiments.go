// Package experiments contains one runner per table and figure of the
// paper's evaluation (Sections 2.4, 3.4, 3.5). Each runner returns typed
// rows that print as the same series the paper plots; cmd/experiments and
// the repository-root benchmarks are thin wrappers around these functions.
//
// Every runner takes a Config whose Quick form shrinks workload sizes so
// the full suite completes in minutes on one core with the pure-Go LP
// solver; Full form uses paper-scale parameters where feasible and the
// documented reductions where not (see the Scale note in DESIGN.md).
package experiments

import (
	"fmt"
	"math"
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/core"
	"nwdeploy/internal/nips"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/online"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// Config selects experiment scale.
type Config struct {
	// Quick selects reduced sizes (seconds per experiment); otherwise the
	// full evaluation sizes are used (minutes).
	Quick bool
	// Workers sizes the worker pool each runner fans its independent work
	// items out on: 0 selects GOMAXPROCS, 1 the serial legacy path. Every
	// runner derives per-item RNGs from fixed seeds and merges results in
	// canonical index order, so rows are byte-identical for every value.
	Workers int
	// Metrics, when non-nil, is threaded into the solver and emulation
	// runs so one registry accumulates counters across the whole suite.
	// Rows are byte-identical with or without it (nil is the no-op
	// default; see internal/obs).
	Metrics *obs.Registry
	// Trace, when non-nil, records the chaos and overload runners' causal
	// event logs (nil is the no-op default; see internal/trace). Because
	// the suite's runners share one tracer, callers that set it must run
	// the experiment blocks serially to keep component sequences — and so
	// dumps — deterministic.
	Trace *trace.Tracer
}

func (c Config) sessions(full int) int {
	if c.Quick {
		return full / 10
	}
	return full
}

// ---------------------------------------------------------------------------
// Figure 5: standalone microbenchmarks of the coordination overhead.
// ---------------------------------------------------------------------------

// Fig5Row is one module's overhead under the two check placements, the
// series of Figures 5(a) and 5(b).
type Fig5Row struct {
	Module    string
	PolicyCPU float64 // CPU overhead, checks in the policy engine
	EventCPU  float64 // CPU overhead, checks as early as possible
	PolicyMem float64
	EventMem  float64
}

// Fig5 runs each standard module in isolation on a mixed trace, comparing
// the coordination-enabled prototypes against unmodified Bro. The paper
// reports mean/min/max over 5 runs of a 100,000-session trace; the
// simulator is deterministic, so single values are exact.
func Fig5(cfg Config) []Fig5Row {
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{
		Sessions: cfg.sessions(100000),
		Seed:     51,
	})
	mods := bro.StandardModules()
	return parallel.Map(cfg.Workers, len(mods), func(i int) Fig5Row {
		m := mods[i]
		pol := bro.MeasureOverhead(m, bro.ModeCoordPolicy, sessions)
		evt := bro.MeasureOverhead(m, bro.ModeCoordEvent, sessions)
		return Fig5Row{
			Module:    m.Name,
			PolicyCPU: pol.CPURatio,
			EventCPU:  evt.CPURatio,
			PolicyMem: pol.MemRatio,
			EventMem:  evt.MemRatio,
		}
	})
}

// ---------------------------------------------------------------------------
// Figures 6-8: network-wide emulation on Internet2.
// ---------------------------------------------------------------------------

// ScalingRow compares the maximum per-node footprints of the edge-only and
// coordinated deployments at one sweep point (Figures 6 and 7).
type ScalingRow struct {
	Modules  int
	Sessions int
	EdgeMem  float64
	CoordMem float64
	EdgeCPU  float64
	CoordCPU float64
}

// runEmulation builds the scenario and runs both deployments on the
// configured worker pool.
func runEmulation(cfg Config, modules []bro.ModuleSpec, sessions []traffic.Session) (edge, coord *bro.EmulationResult, err error) {
	topo := topology.Internet2()
	em, err := bro.NewEmulation(topo, modules, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		return nil, nil, err
	}
	em.Workers = cfg.Workers
	em.Metrics = cfg.Metrics
	return em.Run(bro.DeployEdge), em.Run(bro.DeployCoordinated), nil
}

// Fig6 sweeps the number of NIDS modules at fixed traffic volume
// (100,000 sessions in the paper), duplicating HTTP/IRC/Login/TFTP
// instances to grow the set, and reports the maximum per-node footprints.
func Fig6(cfg Config) ([]ScalingRow, error) {
	topo := topology.Internet2()
	nSessions := cfg.sessions(100000)
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: nSessions, Seed: 61})
	counts := []int{8, 10, 12, 14, 16, 18, 20, 21}
	if cfg.Quick {
		counts = []int{8, 12, 16, 21}
	}
	var rows []ScalingRow
	for _, n := range counts {
		mods := bro.ModuleSubset(n + 1)[1:] // skip the baseline pseudo-module
		edge, coord, err := runEmulation(cfg, mods, sessions)
		if err != nil {
			return nil, fmt.Errorf("fig6 at %d modules: %w", n, err)
		}
		rows = append(rows, ScalingRow{
			Modules: n, Sessions: nSessions,
			EdgeMem: edge.MaxMem(), CoordMem: coord.MaxMem(),
			EdgeCPU: edge.MaxCPU(), CoordCPU: coord.MaxCPU(),
		})
	}
	return rows, nil
}

// Fig7 sweeps the total traffic volume at the full 21-module configuration.
func Fig7(cfg Config) ([]ScalingRow, error) {
	topo := topology.Internet2()
	volumes := []int{20000, 40000, 60000, 80000, 100000}
	if cfg.Quick {
		volumes = []int{2000, 5000, 8000, 10000}
	}
	mods := bro.ModuleSubset(22)[1:] // 21 deployable modules
	var rows []ScalingRow
	for _, v := range volumes {
		sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: v, Seed: 71})
		edge, coord, err := runEmulation(cfg, mods, sessions)
		if err != nil {
			return nil, fmt.Errorf("fig7 at %d sessions: %w", v, err)
		}
		rows = append(rows, ScalingRow{
			Modules: 21, Sessions: v,
			EdgeMem: edge.MaxMem(), CoordMem: coord.MaxMem(),
			EdgeCPU: edge.MaxCPU(), CoordCPU: coord.MaxCPU(),
		})
	}
	return rows, nil
}

// Fig8Row is one node's footprint under both deployments (Figure 8's
// per-location breakdown).
type Fig8Row struct {
	Node     int
	City     string
	EdgeMem  float64
	CoordMem float64
	EdgeCPU  float64
	CoordCPU float64
}

// Fig8 reports per-node loads for the 21-module, 100,000-session
// configuration; the edge deployment's hotspot is New York.
func Fig8(cfg Config) ([]Fig8Row, error) {
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{
		Sessions: cfg.sessions(100000), Seed: 81,
	})
	mods := bro.ModuleSubset(22)[1:]
	edge, coord, err := runEmulation(cfg, mods, sessions)
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for j := 0; j < topo.N(); j++ {
		rows = append(rows, Fig8Row{
			Node: j, City: topo.Nodes[j].City,
			EdgeMem: edge.Reports[j].MemBytes, CoordMem: coord.Reports[j].MemBytes,
			EdgeCPU: edge.Reports[j].CPUUnits, CoordCPU: coord.Reports[j].CPUUnits,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Optimization-time table entries (Sections 2.4 and 3.4).
// ---------------------------------------------------------------------------

// OptTime records one optimization-time measurement.
type OptTime struct {
	Problem string
	Nodes   int
	Vars    int
	Rows    int
	Seconds float64
	// PaperSeconds is the paper's reported figure for context (CPLEX on a
	// full-size instance: 0.42 s NIDS, ~220 s NIPS, both 50 nodes).
	PaperSeconds float64
}

// NIDSOptTime times the NIDS LP solve on a 50-node topology, the paper's
// "0.42 seconds ... for a 50-node topology" measurement. The gravity
// matrix is truncated to the heaviest pairs in quick mode.
func NIDSOptTime(cfg Config) (OptTime, error) {
	topo := topology.FiftyNode()
	tm := traffic.Gravity(topo)
	maxPairs := 400
	nSessions := 40000
	if cfg.Quick {
		maxPairs = 120
		nSessions = 8000
	}
	tm = truncateMatrix(tm, maxPairs)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: nSessions, Seed: 91})
	classes := bro.Classes(bro.StandardModules()[1:])
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		return OptTime{}, err
	}
	start := time.Now()
	plan, err := core.SolveOpts(inst, core.SolveOptions{Metrics: cfg.Metrics})
	if err != nil {
		return OptTime{}, err
	}
	nVars := 0
	for _, u := range inst.Units {
		nVars += len(u.Nodes)
	}
	return OptTime{
		Problem: "nids-lp", Nodes: topo.N(),
		Vars: nVars + 1, Rows: len(inst.Units) + 2*topo.N(),
		Seconds:      time.Since(start).Seconds(),
		PaperSeconds: 0.42,
	}, err2(plan)
}

func err2(p *core.Plan) error {
	if p == nil {
		return fmt.Errorf("experiments: nil plan")
	}
	return nil
}

// NIPSOptTime times the NIPS pipeline (relaxation + rounding + greedy +
// re-solve) on a 50-node topology, the paper's ~220 s measurement.
func NIPSOptTime(cfg Config) (OptTime, error) {
	topo := topology.FiftyNode()
	rules, paths := 20, 40
	if cfg.Quick {
		rules, paths = 10, 20
	}
	inst := nips.NewInstance(topo, nips.UnitRules(rules), nips.Config{
		MaxPaths:             paths,
		RuleCapacityFraction: 0.1,
		MatchSeed:            17,
	})
	start := time.Now()
	dep, rel, err := nips.Solve(inst, nips.SolveOptions{
		Variant: nips.VariantRoundGreedyLP, Iters: 1, Seed: 2, Workers: cfg.Workers,
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return OptTime{}, err
	}
	_ = dep
	return OptTime{
		Problem: "nips-milp-approx", Nodes: topo.N(),
		Vars: rules * (paths*4 + topo.N()), Rows: rel.Iters,
		Seconds:      time.Since(start).Seconds(),
		PaperSeconds: 220,
	}, nil
}

// truncateMatrix keeps the top-k pairs of the matrix, renormalized. A
// matrix whose top-k pairs carry no mass (all-zero demand, or k <= 0)
// yields the zero matrix rather than NaN entries from a 0/0 division.
func truncateMatrix(m traffic.Matrix, k int) traffic.Matrix {
	pairs := m.TopPairs(k)
	out := make(traffic.Matrix, len(m))
	for a := range out {
		out[a] = make([]float64, len(m[a]))
	}
	var sum float64
	for _, p := range pairs {
		sum += m[p[0]][p[1]]
	}
	if sum <= 0 {
		return out
	}
	for _, p := range pairs {
		out[p[0]][p[1]] = m[p[0]][p[1]] / sum
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 10: NIPS rounding optimality gap across topologies.
// ---------------------------------------------------------------------------

// Fig10Row aggregates one (topology, rule-capacity, variant) cell: the
// mean/min/max fraction of the LP upper bound across match-rate scenarios.
type Fig10Row struct {
	Topology string
	CapFrac  float64
	Variant  nips.Variant
	Mean     float64
	Min      float64
	Max      float64
}

// Fig10Topologies returns the evaluation topologies: Internet2 (Abilene),
// Geant, and the Rocketfuel stand-ins.
func Fig10Topologies(cfg Config) []*topology.Topology {
	if cfg.Quick {
		return []*topology.Topology{topology.Internet2(), topology.Geant()}
	}
	return []*topology.Topology{
		topology.Internet2(),
		topology.Geant(),
		topology.RocketfuelLike(topology.AS1221),
		topology.RocketfuelLike(topology.AS1239),
		topology.RocketfuelLike(topology.AS3257),
	}
}

// Fig10 reproduces both panels: for each topology and rule-capacity
// fraction, it solves the relaxation per scenario, runs the rounding
// variants, and reports the best-of-iterations objective as a fraction of
// OptLP. Scale note: the paper uses 100 rules, all paths, 30 scenarios and
// 10 iterations on CPLEX; with the pure-Go simplex the defaults are 15-20
// rules, the heaviest paths, and fewer scenarios/iterations — the
// approximation-gap shape is preserved (see DESIGN.md).
func Fig10(cfg Config) ([]Fig10Row, error) {
	// Rule counts are chosen so the smallest capacity fraction still
	// yields at least one whole TCAM slot per node (the paper's 100 rules
	// give 5 slots at fraction 0.05).
	rules, paths, scenarios, iters := 20, 25, 5, 5
	capFracs := []float64{0.05, 0.1, 0.15, 0.2, 0.25}
	if cfg.Quick {
		rules, paths, scenarios, iters = 20, 12, 2, 3
		capFracs = []float64{0.05, 0.15, 0.25}
	}
	variants := []nips.Variant{nips.VariantRoundLP, nips.VariantRoundGreedyLP}
	topos := Fig10Topologies(cfg)

	// One grid cell per (topology, capacity fraction, scenario). Cells are
	// RNG-independent — each derives its rounding seeds from its own
	// scenario and variant indices — so they fan out on the worker pool and
	// the per-(topology, fraction, variant) aggregates are folded serially
	// in canonical order afterwards, keeping rows byte-identical for every
	// worker count.
	type cell struct{ ti, fi, s int }
	var cells []cell
	for ti := range topos {
		for fi := range capFracs {
			for s := 0; s < scenarios; s++ {
				cells = append(cells, cell{ti, fi, s})
			}
		}
	}
	cellWorkers := parallel.Resolve(cfg.Workers, len(cells))
	// When the grid saturates the pool, keep each cell's rounding sweep
	// serial; a lone cell worker instead parallelizes inside the solve.
	solveWorkers := 1
	if cellWorkers == 1 {
		solveWorkers = cfg.Workers
	}
	ratios, err := parallel.MapErr(cellWorkers, len(cells), func(ci int) ([]float64, error) {
		c := cells[ci]
		topo := topos[c.ti]
		inst := nips.NewInstance(topo, nips.UnitRules(rules), nips.Config{
			MaxPaths:             paths,
			RuleCapacityFraction: capFracs[c.fi],
			MatchSeed:            int64(1000*c.s + 7),
		})
		rel, err := nips.SolveRelaxation(inst)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s cap=%.2f scenario %d: %w", topo.Name, capFracs[c.fi], c.s, err)
		}
		out := make([]float64, len(variants))
		for vi, v := range variants {
			dep, err := nips.SolveFromRelaxation(inst, rel, nips.SolveOptions{
				Variant: v, Iters: iters,
				Seed:    int64(31*c.s + int(v) + 1),
				Workers: solveWorkers,
				Metrics: cfg.Metrics,
			})
			if err != nil {
				return nil, err
			}
			out[vi] = dep.Objective / rel.Objective
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	ci := 0
	for _, topo := range topos {
		for _, frac := range capFracs {
			stats := make([]*agg, len(variants))
			for vi := range variants {
				stats[vi] = newAgg()
			}
			for s := 0; s < scenarios; s++ {
				for vi := range variants {
					stats[vi].add(ratios[ci][vi])
				}
				ci++
			}
			for vi, v := range variants {
				rows = append(rows, Fig10Row{
					Topology: topo.Name, CapFrac: frac, Variant: v,
					Mean: stats[vi].mean(), Min: stats[vi].min, Max: stats[vi].max,
				})
			}
		}
	}
	return rows, nil
}

// Fig10RobustnessRow checks the paper's brevity note — "These results hold
// for other M_ik distributions as well" — by repeating one Figure 10 cell
// under uniform, exponential, and bimodal match-rate draws.
type Fig10RobustnessRow struct {
	Dist    traffic.MatchDist
	Variant nips.Variant
	Mean    float64
}

// Fig10Robustness runs the rounding variants on Internet2 at rule-capacity
// 0.15 under each match-rate distribution.
func Fig10Robustness(cfg Config) ([]Fig10RobustnessRow, error) {
	rules, paths, scenarios, iters := 20, 15, 3, 5
	if cfg.Quick {
		scenarios, iters = 2, 3
	}
	variants := []nips.Variant{nips.VariantRoundLP, nips.VariantRoundGreedyLP}
	dists := []traffic.MatchDist{traffic.DistUniform, traffic.DistExponential, traffic.DistBimodal}

	// Same (distribution × scenario) grid fan-out as Fig10; a cell whose
	// relaxation has zero objective returns nil ratios and is skipped in
	// the fold, matching the serial loop's continue.
	type cell struct{ di, s int }
	var cells []cell
	for di := range dists {
		for s := 0; s < scenarios; s++ {
			cells = append(cells, cell{di, s})
		}
	}
	cellWorkers := parallel.Resolve(cfg.Workers, len(cells))
	solveWorkers := 1
	if cellWorkers == 1 {
		solveWorkers = cfg.Workers
	}
	ratios, err := parallel.MapErr(cellWorkers, len(cells), func(ci int) ([]float64, error) {
		c := cells[ci]
		inst := nips.NewInstance(topology.Internet2(), nips.UnitRules(rules), nips.Config{
			MaxPaths:             paths,
			RuleCapacityFraction: 0.15,
			MatchSeed:            int64(500*c.s + 11),
			MatchDist:            dists[c.di],
		})
		rel, err := nips.SolveRelaxation(inst)
		if err != nil {
			return nil, fmt.Errorf("fig10robustness %v scenario %d: %w", dists[c.di], c.s, err)
		}
		if rel.Objective <= 0 {
			return nil, nil
		}
		out := make([]float64, len(variants))
		for vi, v := range variants {
			dep, err := nips.SolveFromRelaxation(inst, rel, nips.SolveOptions{
				Variant: v, Iters: iters,
				Seed:    int64(13*c.s + int(v) + 1),
				Workers: solveWorkers,
				Metrics: cfg.Metrics,
			})
			if err != nil {
				return nil, err
			}
			out[vi] = dep.Objective / rel.Objective
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig10RobustnessRow
	ci := 0
	for _, dist := range dists {
		stats := make([]*agg, len(variants))
		for vi := range variants {
			stats[vi] = newAgg()
		}
		for s := 0; s < scenarios; s++ {
			if ratios[ci] != nil {
				for vi := range variants {
					stats[vi].add(ratios[ci][vi])
				}
			}
			ci++
		}
		for vi, v := range variants {
			rows = append(rows, Fig10RobustnessRow{Dist: dist, Variant: v, Mean: stats[vi].mean()})
		}
	}
	return rows, nil
}

type agg struct {
	sum, min, max float64
	n             int
}

func newAgg() *agg { return &agg{min: math.Inf(1), max: math.Inf(-1)} }

func (a *agg) add(x float64) {
	a.sum += x
	a.n++
	a.min = math.Min(a.min, x)
	a.max = math.Max(a.max, x)
}

func (a *agg) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// ---------------------------------------------------------------------------
// Figure 11: online adaptation regret.
// ---------------------------------------------------------------------------

// Fig11Row is one run's regret series.
type Fig11Row struct {
	Run    int
	Series []online.RegretPoint
}

// Fig11 runs the FPL adaptation on the Internet2 setup without rule
// capacity constraints for several independent runs, reporting the
// normalized regret over time. The paper runs 1000 epochs and 5 runs.
func Fig11(cfg Config) ([]Fig11Row, error) {
	runs, epochs, rules, paths := 5, 1000, 8, 12
	sampleEvery := 50
	if cfg.Quick {
		runs, epochs, rules, paths = 3, 120, 5, 8
		sampleEvery = 20
	}
	inst := nips.NewInstance(topology.Internet2(), nips.UnitRules(rules), nips.Config{
		MaxPaths:             paths,
		RuleCapacityFraction: 1, // no TCAM constraint in Section 3.5
		MatchSeed:            3,
	})
	// Runs are independent by construction (each owns its seed), so they
	// fan out on the worker pool; rows keep run order.
	return parallel.MapErr(cfg.Workers, runs, func(r int) (Fig11Row, error) {
		series, err := online.Run(inst, online.RunConfig{
			Epochs:      epochs,
			SampleEvery: sampleEvery,
			Seed:        int64(1000 + 77*r),
		})
		if err != nil {
			return Fig11Row{}, fmt.Errorf("fig11 run %d: %w", r, err)
		}
		return Fig11Row{Run: r + 1, Series: series}, nil
	})
}

// ---------------------------------------------------------------------------
// Section 2.5: redundancy extension.
// ---------------------------------------------------------------------------

// RedundancyRow records how the minimized max load grows with the coverage
// level r.
type RedundancyRow struct {
	R       int
	MaxLoad float64
}

// Redundancy solves the NIDS LP at increasing coverage levels on
// path-scoped classes, demonstrating the Section 2.5 wraparound extension:
// load grows roughly linearly with r while every point in the hash space
// stays covered by r distinct nodes.
func Redundancy(cfg Config) ([]RedundancyRow, error) {
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{
		Sessions: cfg.sessions(30000), Seed: 25,
	})
	// Path-scoped classes only: ingress/egress units have a single
	// eligible node and cannot be replicated.
	var classes []core.Class
	for _, c := range bro.Classes(bro.StandardModules()[1:]) {
		if c.Scope == core.PerPath {
			classes = append(classes, c)
		}
	}
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		return nil, err
	}
	// r is capped at 2: adjacent-node paths have exactly two on-path
	// locations, so higher replication levels are structurally infeasible
	// on this topology.
	var rows []RedundancyRow
	for r := 1; r <= 2; r++ {
		plan, err := core.SolveOpts(inst, core.SolveOptions{Redundancy: r, Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("redundancy r=%d: %w", r, err)
		}
		rows = append(rows, RedundancyRow{R: r, MaxLoad: plan.Objective})
	}
	return rows, nil
}
