package experiments

import (
	"math"
	"reflect"
	"testing"

	"nwdeploy/internal/traffic"
)

// TestTruncateMatrixZeroMass: a demand matrix whose top pairs carry no mass
// must truncate to the zero matrix, not to NaN entries from a 0/0
// renormalization (NaN volumes would silently poison every downstream
// instance built from the matrix).
func TestTruncateMatrixZeroMass(t *testing.T) {
	zero := make(traffic.Matrix, 4)
	for a := range zero {
		zero[a] = make([]float64, 4)
	}
	out := truncateMatrix(zero, 3)
	if len(out) != 4 {
		t.Fatalf("matrix shape changed: %d rows", len(out))
	}
	for a := range out {
		for b, v := range out[a] {
			if v != 0 {
				t.Fatalf("entry (%d,%d) = %v, want 0", a, b, v)
			}
			if math.IsNaN(v) {
				t.Fatalf("entry (%d,%d) is NaN", a, b)
			}
		}
	}
	// k <= 0 selects no pairs and must behave the same way.
	nonzero := make(traffic.Matrix, 2)
	nonzero[0] = []float64{0, 1}
	nonzero[1] = []float64{1, 0}
	for _, v := range truncateMatrix(nonzero, 0)[0] {
		if math.IsNaN(v) {
			t.Fatal("k=0 truncation produced NaN")
		}
	}
}

// The experiment grids must produce byte-identical rows for every worker
// count: parallelism is an execution detail, never a source of numeric or
// ordering drift.

func TestFig5WorkersDeterminism(t *testing.T) {
	serial := Fig5(Config{Quick: true, Workers: 1})
	fanned := Fig5(Config{Quick: true, Workers: 4})
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("Fig5 rows depend on worker count:\nserial: %+v\nfanned: %+v", serial, fanned)
	}
}

func TestFig10WorkersDeterminism(t *testing.T) {
	serial, err := Fig10(Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := Fig10(Config{Quick: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("Fig10 rows depend on worker count:\nserial: %+v\nfanned: %+v", serial, fanned)
	}
}

func TestFig11WorkersDeterminism(t *testing.T) {
	serial, err := Fig11(Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := Fig11(Config{Quick: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatal("Fig11 regret series depend on worker count")
	}
}
