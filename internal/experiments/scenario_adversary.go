package experiments

import (
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/traffic"
)

// AdaptiveAdversaryScenario is the paper's Section 3.5 threat model made
// concrete against the cluster runtime: an adversary who reads the
// published manifests (and published shed) each epoch, finds the
// least-covered segments of every coordination unit's hash space, and
// crafts sessions whose selection-hash lands inside them. Against an
// intact r>=1 floor every crafted session still meets an analyst — the
// evasion rate is the empirical check that publishing manifests does not
// hand the adversary a hole.
type AdaptiveAdversaryScenario struct {
	// Sessions is the number of crafted sessions per epoch.
	Sessions int
	// Targets bounds how many weak segments are attacked per epoch.
	Targets int
	// Attempts bounds the per-session rejection sampling for a tuple whose
	// hash lands in the chosen segment (narrow segments need more tries;
	// on exhaustion the last candidate is used).
	Attempts int
	// Seed drives the tuple search.
	Seed int64
}

// NewAdaptiveAdversary builds the catalog-default adversary: 80 crafted
// sessions per epoch against the 16 weakest segments.
func NewAdaptiveAdversary(seed int64) *AdaptiveAdversaryScenario {
	return &AdaptiveAdversaryScenario{Sessions: 80, Targets: 16, Attempts: 400, Seed: seed}
}

// Name implements Scenario.
func (s *AdaptiveAdversaryScenario) Name() string { return "adversary" }

// Step implements Scenario.
func (s *AdaptiveAdversaryScenario) Step(env *cluster.ScenarioEnv) cluster.Stimulus {
	// Weak segments of pair-keyed units only: those give the adversary a
	// concrete ingress/egress to send between. The list is already sorted
	// least-covered first.
	var weak []cluster.WeakRange
	for _, wr := range env.WeakRanges(0) {
		if wr.Key[1] >= 0 {
			weak = append(weak, wr)
		}
		if s.Targets > 0 && len(weak) >= s.Targets {
			break
		}
	}
	if len(weak) == 0 {
		return cluster.Stimulus{}
	}
	inject := make([]traffic.Session, 0, s.Sessions)
	for i := 0; i < s.Sessions; i++ {
		wr := weak[i%len(weak)]
		src, dst := wr.Key[0], wr.Key[1]
		var t hashing.FiveTuple
		for a := 0; a < s.Attempts; a++ {
			h := uint64(parallel.SplitSeed(s.Seed, int64(env.Epoch)<<40|int64(i)<<16|int64(a)))
			t = hashing.FiveTuple{
				SrcIP:   uint32(10<<24|src<<16) | uint32(h&0xffff),
				DstIP:   uint32(10<<24|dst<<16) | uint32((h>>16)&0xff),
				SrcPort: uint16(1024 + (h>>24)&0x7fff),
				DstPort: 80,
				Proto:   6,
			}
			x := env.Hash(wr.Class, t)
			if x >= wr.Range.Lo && x < wr.Range.Hi {
				break
			}
		}
		inject = append(inject, traffic.Session{
			Tuple: t,
			Src:   src, Dst: dst,
			ID:      1<<22 | env.Epoch<<12 | i&0xfff,
			Proto:   traffic.HTTP,
			Packets: 25,
			Bytes:   25 * 700,
		})
	}
	return cluster.Stimulus{Inject: inject}
}
