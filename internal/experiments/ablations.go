package experiments

import (
	"fmt"
	"math/rand"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/core"
	"nwdeploy/internal/nips"
	"nwdeploy/internal/online"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// AblationRow is one design-choice comparison: a named metric under the
// baseline design and under the ablated/extended design.
type AblationRow struct {
	Name     string
	Metric   string
	Baseline float64
	Variant  float64
}

// Ablations quantifies the design choices DESIGN.md calls out:
//
//   - lp-vs-greedy: the LP's min-max load against a greedy whole-unit
//     assignment — how much of the benefit is the optimization itself.
//   - fine-grained-mem / fine-grained-cpu: the Section 2.5 first-packet
//     extension against record-granularity coordination.
//   - keyed-hash: NIPS drop rate over evadable cells when the adversary
//     knows the sampling key versus when the key is private.
func Ablations(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{
		Sessions: cfg.sessions(60000), Seed: 19, HostsPerNode: 16,
	})

	// LP vs greedy assignment.
	classes := bro.Classes(bro.StandardModules()[1:])
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		return nil, err
	}
	lpPlan, err := core.SolveOpts(inst, core.SolveOptions{Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}
	greedy := core.GreedyPlan(inst)
	rows = append(rows, AblationRow{
		Name: "lp-vs-greedy", Metric: "min-max load (lower is better)",
		Baseline: greedy.Objective, Variant: lpPlan.Objective,
	})

	// Fine-grained coordination.
	em, err := bro.NewEmulation(topo, bro.StandardModules()[1:], sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		return nil, err
	}
	em.Workers = cfg.Workers
	em.Metrics = cfg.Metrics
	coarse := em.RunFineGrained(bro.DeployCoordinated, false)
	fine := em.RunFineGrained(bro.DeployCoordinated, true)
	rows = append(rows,
		AblationRow{
			Name: "fine-grained-mem", Metric: "max per-node memory",
			Baseline: coarse.MaxMem(), Variant: fine.MaxMem(),
		},
		AblationRow{
			Name: "fine-grained-cpu", Metric: "max per-node CPU",
			Baseline: coarse.MaxCPU(), Variant: fine.MaxCPU(),
		},
	)

	// Keyed hash vs known key under an evading adversary.
	ninst := nips.NewInstance(topo, nips.UnitRules(10), nips.Config{
		MaxPaths:             12,
		RuleCapacityFraction: 0.3,
		MatchSeed:            23,
	})
	dep, _, err := nips.Solve(ninst, nips.SolveOptions{
		Variant: nips.VariantRoundGreedyLP, Iters: 3, Seed: 4, Workers: cfg.Workers,
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	informed := nips.SimulateEvasion(ninst, dep, 555, 555, 40, 64, rand.New(rand.NewSource(5)))
	blind := nips.SimulateEvasion(ninst, dep, 555, 556, 40, 64, rand.New(rand.NewSource(5)))
	rows = append(rows, AblationRow{
		Name: "keyed-hash", Metric: "drop rate over evadable cells (higher is better)",
		Baseline: informed.DroppedEvadable, Variant: blind.DroppedEvadable,
	})
	return rows, nil
}

// AdversaryRow is one adversary's outcome against the FPL deployer.
type AdversaryRow struct {
	Adversary   string
	FinalRegret float64
	FPLTotal    float64
}

// Adversaries plays the Section 3.5 deployer against the oblivious,
// drifting, and fully adaptive adversaries — the strategic-adversary
// evaluation the paper leaves as future work.
func Adversaries(cfg Config) ([]AdversaryRow, error) {
	epochs, rules, paths := 400, 6, 10
	if cfg.Quick {
		epochs, rules, paths = 80, 4, 8
	}
	inst := nips.NewInstance(topology.Internet2(), nips.UnitRules(rules), nips.Config{
		MaxPaths:             paths,
		RuleCapacityFraction: 1,
		MatchSeed:            31,
	})
	advs := []online.Adversary{
		&online.UniformAdversary{Rules: rules, Paths: len(inst.Paths), High: 0.01, Seed: 7},
		&online.DriftAdversary{Rules: rules, Paths: len(inst.Paths), High: 0.01, Period: epochs / 8, Hot: 3, Seed: 7},
		&online.EvasiveAdversary{Inst: inst, High: 0.01, Hot: 4, Seed: 7},
	}
	var rows []AdversaryRow
	for _, adv := range advs {
		res, err := online.RunVsAdversary(inst, adv, online.RunConfig{
			Epochs:      epochs,
			SampleEvery: epochs / 8,
			Seed:        7,
		})
		if err != nil {
			return nil, fmt.Errorf("adversary %s: %w", adv.Name(), err)
		}
		rows = append(rows, AdversaryRow{
			Adversary:   adv.Name(),
			FinalRegret: res.Series[len(res.Series)-1].Normalized,
			FPLTotal:    res.FPLTotal,
		})
	}
	return rows, nil
}
