package experiments

import (
	"math"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/core"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// ProvisioningRow compares one planning strategy's promised load against
// what bursty epochs actually inflict on it.
type ProvisioningRow struct {
	Strategy string
	// PlannedMaxLoad is the LP objective the plan was solved for.
	PlannedMaxLoad float64
	// WorstEpochLoad is the worst realized max per-node load across the
	// bursty epoch series with the plan held fixed.
	WorstEpochLoad float64
	// MeanEpochLoad is the average realized max load.
	MeanEpochLoad float64
	// ViolationFraction is the fraction of epochs whose realized max load
	// exceeded the planned one — how often a deployment provisioned to the
	// plan's promise would be overrun. This is the robustness the paper's
	// 95th-percentile advice buys.
	ViolationFraction float64
}

// Provisioning reproduces the paper's Section 5 "Traffic changes" advice:
// plans are re-solved only every few minutes, so short-term bursts hit a
// fixed assignment. Planning on 95th-percentile per-path volumes trades a
// higher nominal load for a tighter worst case than planning on the mean.
func Provisioning(cfg Config) ([]ProvisioningRow, error) {
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{
		Sessions: cfg.sessions(40000), Seed: 29,
	})
	classes := bro.Classes(bro.StandardModules()[1:])
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		return nil, err
	}

	epochs := 120
	if cfg.Quick {
		epochs = 40
	}
	pv := traffic.Volumes(topo, tm, 0)
	series := traffic.BurstySeries(pv, traffic.BurstConfig{
		Epochs: epochs, BurstProb: 0.08, BurstFactor: 3, Seed: 41,
	})
	mean := series.Mean()
	p95 := series.Quantile(0.95)

	// Per unordered-pair burst ratios (both directions folded by max);
	// ingress/egress-pinned units keep their nominal volumes.
	ratio := map[[2]int]float64{}
	for k, pair := range series.Pairs {
		a, b := pair[0], pair[1]
		if a > b {
			a, b = b, a
		}
		r := p95[k] / mean[k]
		if r > ratio[[2]int{a, b}] {
			ratio[[2]int{a, b}] = r
		}
	}
	unitScale := func(of func(k int) float64) func(core.CoordUnit) float64 {
		// Builds a scaler from per-pair factors, defaulting to 1.
		byPair := map[[2]int]float64{}
		for k, pair := range series.Pairs {
			a, b := pair[0], pair[1]
			if a > b {
				a, b = b, a
			}
			if v := of(k); v > byPair[[2]int{a, b}] {
				byPair[[2]int{a, b}] = v
			}
		}
		return func(u core.CoordUnit) float64 {
			if u.Key[1] < 0 {
				return 1 // ingress/egress units: nominal
			}
			if f, ok := byPair[u.Key]; ok && f > 0 {
				return f
			}
			return 1
		}
	}

	meanPlan, err := core.SolveOpts(inst, core.SolveOptions{Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}
	consInst := inst.Scaled(unitScale(func(k int) float64 { return p95[k] / mean[k] }))
	consPlan, err := core.SolveOpts(consInst, core.SolveOptions{Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}

	evaluate := func(plan *core.Plan, promised float64) ProvisioningRow {
		row := ProvisioningRow{PlannedMaxLoad: promised}
		violations := 0
		for e := 0; e < epochs; e++ {
			scaled := inst.Scaled(unitScale(func(k int) float64 {
				return series.Volumes[e][k] / mean[k]
			}))
			cpu, memLoad := core.Loads(scaled, plan)
			l := math.Max(cpu, memLoad)
			row.WorstEpochLoad = math.Max(row.WorstEpochLoad, l)
			row.MeanEpochLoad += l
			if l > promised {
				violations++
			}
		}
		row.MeanEpochLoad /= float64(epochs)
		row.ViolationFraction = float64(violations) / float64(epochs)
		return row
	}

	meanRow := evaluate(meanPlan, meanPlan.Objective)
	meanRow.Strategy = "mean"
	consRow := evaluate(consPlan, consPlan.Objective)
	consRow.Strategy = "p95-conservative"
	return []ProvisioningRow{meanRow, consRow}, nil
}
