package experiments

import (
	"math"
	"testing"

	"nwdeploy/internal/nips"
)

var quick = Config{Quick: true}

func TestFig5ReproducesPaperShape(t *testing.T) {
	rows := Fig5(quick)
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9 modules", len(rows))
	}
	byName := map[string]Fig5Row{}
	for _, r := range rows {
		byName[r.Module] = r
	}
	// Cheap group: ~2% in both variants.
	for _, n := range []string{"baseline", "signature", "blaster", "synflood"} {
		r := byName[n]
		if r.PolicyCPU > 0.06 || r.EventCPU > 0.06 {
			t.Errorf("%s: CPU overheads (%.3f, %.3f) exceed the ~2%% group bound", n, r.PolicyCPU, r.EventCPU)
		}
	}
	// Policy-bound group: ~10% in both variants (checks cannot move).
	for _, n := range []string{"scan", "tftp"} {
		r := byName[n]
		if r.PolicyCPU < 0.05 || math.Abs(r.PolicyCPU-r.EventCPU) > 1e-9 {
			t.Errorf("%s: overheads (%.3f, %.3f) not in the ~10%%/equal pattern", n, r.PolicyCPU, r.EventCPU)
		}
	}
	// Event-relocatable group: policy >> event.
	for _, n := range []string{"http", "irc", "login"} {
		r := byName[n]
		if r.PolicyCPU < 2*r.EventCPU {
			t.Errorf("%s: policy overhead %.3f not well above event %.3f", n, r.PolicyCPU, r.EventCPU)
		}
	}
	// Memory overhead at most ~6% everywhere (Figure 5(b)).
	for _, r := range rows {
		if r.PolicyMem <= 0 || r.PolicyMem > 0.065 || r.EventMem <= 0 || r.EventMem > 0.065 {
			t.Errorf("%s: memory overheads (%.4f, %.4f) out of (0, 6.5%%]", r.Module, r.PolicyMem, r.EventMem)
		}
	}
}

func TestFig6CoordinatedScalesBetter(t *testing.T) {
	rows, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.CoordCPU >= r.EdgeCPU {
			t.Errorf("modules=%d: coordinated CPU %.3g >= edge %.3g", r.Modules, r.CoordCPU, r.EdgeCPU)
		}
		if r.CoordMem >= r.EdgeMem {
			t.Errorf("modules=%d: coordinated mem %.3g >= edge %.3g", r.Modules, r.CoordMem, r.EdgeMem)
		}
	}
	// The gap should widen (or at least persist) as modules grow.
	first, last := rows[0], rows[len(rows)-1]
	if last.EdgeCPU-last.CoordCPU < first.EdgeCPU-first.CoordCPU {
		t.Errorf("CPU gap shrank from %.3g to %.3g as modules grew",
			first.EdgeCPU-first.CoordCPU, last.EdgeCPU-last.CoordCPU)
	}
}

func TestFig7CoordinationSavingsAtScale(t *testing.T) {
	rows, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	cpuSaving := 1 - last.CoordCPU/last.EdgeCPU
	memSaving := 1 - last.CoordMem/last.EdgeMem
	// Paper: ~50% CPU and ~20% memory reduction at the largest volume.
	if cpuSaving < 0.3 {
		t.Errorf("CPU saving %.2f, want >= 0.3 (paper ~0.5)", cpuSaving)
	}
	if memSaving < 0.1 {
		t.Errorf("memory saving %.2f, want >= 0.1 (paper ~0.2)", memSaving)
	}
	// Monotone growth in load with volume for both deployments.
	for i := 1; i < len(rows); i++ {
		if rows[i].EdgeCPU < rows[i-1].EdgeCPU || rows[i].CoordCPU < rows[i-1].CoordCPU {
			t.Errorf("CPU not monotone in volume at row %d", i)
		}
	}
}

func TestFig8NewYorkHotspot(t *testing.T) {
	rows, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11 nodes", len(rows))
	}
	var ny Fig8Row
	maxEdge := -1.0
	var hottest string
	for _, r := range rows {
		if r.City == "New York" {
			ny = r
		}
		if r.EdgeCPU > maxEdge {
			maxEdge, hottest = r.EdgeCPU, r.City
		}
	}
	if hottest != "New York" {
		t.Errorf("edge hotspot is %s, want New York", hottest)
	}
	if ny.CoordCPU >= ny.EdgeCPU {
		t.Errorf("coordination did not offload New York: %.3g >= %.3g", ny.CoordCPU, ny.EdgeCPU)
	}
	// Some node must take on more work than in the edge deployment (the
	// offloading target, the paper's nodes 6 and 8).
	gained := false
	for _, r := range rows {
		if r.CoordCPU > r.EdgeCPU {
			gained = true
		}
	}
	if !gained {
		t.Error("no node gained work under coordination; offloading not visible")
	}
}

func TestNIDSOptTimeCompletes(t *testing.T) {
	res, err := NIDSOptTime(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 50 || res.Seconds <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Seconds > 120 {
		t.Fatalf("quick NIDS optimization took %.1fs; solver regression?", res.Seconds)
	}
}

func TestNIPSOptTimeCompletes(t *testing.T) {
	res, err := NIPSOptTime(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 50 || res.Seconds <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestFig10OptimalityGap(t *testing.T) {
	rows, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	// 2 topologies x 3 capacity fractions x 2 variants.
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Mean <= 0 || r.Mean > 1+1e-9 || r.Min > r.Mean || r.Max < r.Mean {
			t.Fatalf("malformed aggregate: %+v", r)
		}
		// The paper's bounds (>= 0.7 for rounding+lp, >= 0.92 for the
		// greedy variant) hold in its regime of >= 5 TCAM slots per node
		// (100 rules x fraction >= 0.05). At our reduced rule count the
		// cap fraction 0.05 leaves a single slot per node, where the MILP
		// integrality gap is genuinely larger; relax the bound there.
		tight := r.CapFrac >= 0.1
		switch r.Variant {
		case nips.VariantRoundLP:
			want := 0.7
			if !tight {
				want = 0.6
			}
			if r.Mean < want {
				t.Errorf("%s cap=%.2f: rounding+lp at %.3f of OptLP, want >= %.2f", r.Topology, r.CapFrac, r.Mean, want)
			}
		case nips.VariantRoundGreedyLP:
			want := 0.92
			if !tight {
				want = 0.8
			}
			if r.Mean < want {
				t.Errorf("%s cap=%.2f: greedy variant at %.3f of OptLP, want >= %.2f", r.Topology, r.CapFrac, r.Mean, want)
			}
		}
	}
}

func TestFig11RegretSmall(t *testing.T) {
	rows, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d runs", len(rows))
	}
	for _, run := range rows {
		final := run.Series[len(run.Series)-1].Normalized
		if math.Abs(final) > 0.15 {
			t.Errorf("run %d: final normalized regret %.3f, want |r| <= 0.15 (paper)", run.Run, final)
		}
	}
}

func TestRedundancyLoadGrowsWithR(t *testing.T) {
	rows, err := Redundancy(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].MaxLoad <= rows[0].MaxLoad {
		t.Fatalf("r=2 load %.3g not above r=1 load %.3g", rows[1].MaxLoad, rows[0].MaxLoad)
	}
	if rows[1].MaxLoad > 3*rows[0].MaxLoad {
		t.Fatalf("r=2 load %.3g implausibly above 3x the r=1 load %.3g", rows[1].MaxLoad, rows[0].MaxLoad)
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations(quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// LP strictly beats greedy on min-max load.
	if r := byName["lp-vs-greedy"]; r.Variant >= r.Baseline {
		t.Errorf("LP objective %v not below greedy %v", r.Variant, r.Baseline)
	}
	// Fine-grained reduces both footprints.
	if r := byName["fine-grained-mem"]; r.Variant >= r.Baseline {
		t.Errorf("fine-grained memory %v not below coarse %v", r.Variant, r.Baseline)
	}
	if r := byName["fine-grained-cpu"]; r.Variant >= r.Baseline {
		t.Errorf("fine-grained CPU %v not below coarse %v", r.Variant, r.Baseline)
	}
	// The private key restores drops against the evader.
	if r := byName["keyed-hash"]; r.Variant <= r.Baseline+0.05 {
		t.Errorf("private key (%v) did not improve on known key (%v)", r.Variant, r.Baseline)
	}
}

func TestAdversaries(t *testing.T) {
	rows, err := Adversaries(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d adversaries", len(rows))
	}
	for _, r := range rows {
		if r.FPLTotal <= 0 {
			t.Errorf("%s: deployer dropped nothing", r.Adversary)
		}
		if math.IsNaN(r.FinalRegret) || math.IsInf(r.FinalRegret, 0) {
			t.Errorf("%s: non-finite regret", r.Adversary)
		}
	}
}

func TestFig10Robustness(t *testing.T) {
	rows, err := Fig10Robustness(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 distributions x 2 variants
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Mean <= 0 || r.Mean > 1+1e-9 {
			t.Fatalf("malformed row %+v", r)
		}
		// The paper's qualitative claim: the greedy variant stays strong
		// under every distribution.
		if r.Variant == nips.VariantRoundGreedyLP && r.Mean < 0.9 {
			t.Errorf("%v: greedy variant at %.3f of OptLP, want >= 0.9", r.Dist, r.Mean)
		}
	}
}

func TestProvisioningConservativeTightensWorstCase(t *testing.T) {
	rows, err := Provisioning(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var mean, cons ProvisioningRow
	for _, r := range rows {
		switch r.Strategy {
		case "mean":
			mean = r
		case "p95-conservative":
			cons = r
		}
	}
	// The conservative plan trades a higher nominal load for credibility:
	// a deployment provisioned to its promise is overrun far less often.
	if cons.PlannedMaxLoad <= mean.PlannedMaxLoad {
		t.Fatalf("conservative promise %.4f not above mean promise %.4f", cons.PlannedMaxLoad, mean.PlannedMaxLoad)
	}
	if cons.ViolationFraction >= mean.ViolationFraction {
		t.Fatalf("conservative violation fraction %.2f not below mean plan's %.2f",
			cons.ViolationFraction, mean.ViolationFraction)
	}
	// Bursts must actually stress the mean plan (scenario sanity).
	if mean.ViolationFraction < 0.2 {
		t.Fatalf("mean plan violated in only %.2f of epochs; scenario inert", mean.ViolationFraction)
	}
}
