package experiments

import (
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/traffic"
)

// SYNFloodScenario injects a spoofed-source TCP flood at one victim node
// during a window of epochs: enough distinct connections per epoch to
// cross the SYNFlood module's per-destination threshold, so the flood is
// observable in alerts when the data plane runs, and heavy enough in
// packet volume to lean on the victim-egress unit under the governor.
// Sources rotate over every other node (a distributed flood), with
// per-epoch re-randomized spoofed addresses.
type SYNFloodScenario struct {
	// Victim is the target node; the flood converges on one host behind it.
	Victim int
	// Floods is the injected connection count per flood epoch. The module
	// alerts above 500 connections per destination.
	Floods int
	// Start and Duration bound the flood window in epochs (1-based start).
	Start, Duration int
	// Seed re-randomizes the spoofed sources each epoch.
	Seed int64
}

// NewSYNFlood builds the catalog-default flood: 650 connections per epoch
// at node 2, switched on for the middle half of the run.
func NewSYNFlood(seed int64, epochs int) *SYNFloodScenario {
	dur := epochs / 2
	if dur < 1 {
		dur = 1
	}
	return &SYNFloodScenario{
		Victim: 2, Floods: 650, Start: 1 + epochs/4, Duration: dur, Seed: seed,
	}
}

// Name implements Scenario.
func (s *SYNFloodScenario) Name() string { return "synflood" }

// Step implements Scenario.
func (s *SYNFloodScenario) Step(env *cluster.ScenarioEnv) cluster.Stimulus {
	if env.Epoch < s.Start || env.Epoch >= s.Start+s.Duration {
		return cluster.Stimulus{}
	}
	victim := s.Victim % env.Nodes
	inject := make([]traffic.Session, 0, s.Floods)
	for i := 0; i < s.Floods; i++ {
		src := i % env.Nodes
		if src == victim {
			src = (src + 1) % env.Nodes
		}
		// Spoofed source address: fresh 16 bits of host entropy per
		// (epoch, connection), drawn from the scenario seed.
		h := uint64(parallel.SplitSeed(s.Seed, int64(env.Epoch)<<32|int64(i)))
		inject = append(inject, traffic.Session{
			Tuple: hashing.FiveTuple{
				SrcIP:   uint32(10<<24|src<<16) | uint32(h&0xffff),
				DstIP:   uint32(10<<24 | victim<<16 | 80),
				SrcPort: uint16(1024 + (h>>16)&0x7fff),
				DstPort: 80,
				Proto:   6,
			},
			Src: src, Dst: victim,
			ID:      1<<21 | env.Epoch<<12 | i&0xfff,
			Proto:   traffic.HTTP,
			Packets: 3, // SYN, SYN-ACK, RST: half-open handshakes
			Bytes:   3 * 60,
		})
	}
	return cluster.Stimulus{Inject: inject}
}
