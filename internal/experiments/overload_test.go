package experiments

import (
	"reflect"
	"testing"
)

// The overload grid must be deterministic across worker counts like every
// other experiment runner.
func TestOverloadWorkersDeterminism(t *testing.T) {
	serial, err := Overload(Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := Overload(Config{Quick: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("Overload rows depend on worker count:\nserial: %+v\nfanned: %+v", serial, fanned)
	}
}

// The grid's headline claims: the governor shrinks the over-budget count
// at the same burst amplitude, never sheds below the coverage floor, and
// warm-started replans land in fewer iterations than cold ones.
func TestOverloadGridClaims(t *testing.T) {
	rows, err := Overload(Config{Quick: true, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OverloadRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	ungov, gov := byName["moderate_ungoverned"], byName["moderate_governed"]
	if ungov.OverBudget == 0 {
		t.Fatal("ungoverned moderate bursts never exceeded budget — grid is vacuous")
	}
	if gov.OverBudget >= ungov.OverBudget {
		t.Fatalf("governor did not reduce over-budget node-epochs: %d vs %d",
			gov.OverBudget, ungov.OverBudget)
	}
	if gov.OverBudget > gov.FloorLimited {
		t.Fatalf("governed over-budget %d > floor-limited %d: sheddable width left on an over node",
			gov.OverBudget, gov.FloorLimited)
	}
	if gov.ShedWidthMax == 0 {
		t.Fatal("governed run never shed")
	}
	if gov.WorstCoverage != 1 {
		t.Fatalf("governed shedding dropped coverage to %v — copy-0 shed", gov.WorstCoverage)
	}

	cold, warm := byName["heavy_cold_replan"], byName["heavy_warm_replan"]
	if cold.Replans == 0 || warm.Replans == 0 {
		t.Fatalf("heavy drift triggered no replans (cold %d, warm %d)", cold.Replans, warm.Replans)
	}
	if warm.ReplanIters >= cold.ReplanIters {
		t.Fatalf("warm replans took %d iters, cold %d", warm.ReplanIters, cold.ReplanIters)
	}
}
