package experiments

import (
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/control"
)

// ChaosRow is one epoch of the runtime-resilience experiment: the injected
// faults, the control plane's convergence, and achieved vs predicted
// coverage. One block per scenario (redundancy level).
type ChaosRow struct {
	Scenario       string
	Redundancy     int
	Epoch          int
	ControllerDown bool
	DownNodes      int
	Synced         int
	Stale          int
	Dark           int
	FetchAttempts  int
	FetchFailures  int
	Alerts         int
	WorstCoverage  float64
	AvgCoverage    float64
	PredictedWorst float64
}

// Chaos runs the cluster runtime under seeded fault injection in two
// provisioning regimes: the base r=1 deployment of the standard modules
// (every failure costs coverage), and an r=2 deployment of the
// path-scoped modules with failures capped at r-1 (the Section 2.5
// guarantee regime, where coverage must hold at 100%). Rows are
// deterministic for any Workers value: the chaos runtime derives every
// decision from the scenario seed.
func Chaos(cfg Config) ([]ChaosRow, error) {
	epochs := 10
	sessions := cfg.sessions(8000)
	if cfg.Quick {
		epochs = 5
	}
	base := cluster.ChaosConfig{
		Sessions: sessions, Epochs: epochs, Seed: 71,
		Faults:  chaos.NetworkFaults{DropProb: 0.2, BlackholeProb: 0.05},
		Retry:   cluster.RetryPolicy{MaxAttempts: 6, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, JitterFrac: 0.3},
		Agent:   control.AgentOptions{DialTimeout: 200 * time.Millisecond, RPCTimeout: 200 * time.Millisecond},
		Workers: cfg.Workers,
		Metrics: cfg.Metrics,
		Trace:   cfg.Trace,
	}

	scenarios := []struct {
		name string
		mut  func(*cluster.ChaosConfig)
	}{
		{"base_r1", func(c *cluster.ChaosConfig) {
			c.Redundancy = 1
		}},
		{"redundant_r2", func(c *cluster.ChaosConfig) {
			// r=2 needs every unit to admit two copies: only the
			// path-scoped modules qualify (ingress/egress units have a
			// single eligible node). Failures stay within r-1 so the
			// coverage guarantee is on trial.
			c.Redundancy = 2
			c.MaxDown = 1
			c.NodeFailProb = 0.3
			c.Modules = pathScopedModules()
		}},
	}

	var rows []ChaosRow
	for _, sc := range scenarios {
		run := base
		sc.mut(&run)
		rep, err := cluster.CoverageUnderChaos(run)
		if err != nil {
			return nil, err
		}
		for _, e := range rep.Epochs {
			rows = append(rows, ChaosRow{
				Scenario:       sc.name,
				Redundancy:     rep.Redundancy,
				Epoch:          e.Epoch,
				ControllerDown: e.ControllerDown,
				DownNodes:      len(e.DownNodes),
				Synced:         e.SyncedAgents,
				Stale:          e.StaleAgents,
				Dark:           e.DarkAgents,
				FetchAttempts:  e.FetchAttempts,
				FetchFailures:  e.FetchFailures,
				Alerts:         e.Alerts,
				WorstCoverage:  e.WorstCoverage,
				AvgCoverage:    e.AvgCoverage,
				PredictedWorst: e.PredictedWorst,
			})
		}
	}
	return rows, nil
}

// pathScopedModules selects the standard modules whose classes are
// PerPath-scoped, the set for which redundancy r >= 2 is feasible.
func pathScopedModules() []bro.ModuleSpec {
	var out []bro.ModuleSpec
	for _, m := range bro.StandardModules() {
		switch m.Name {
		case "signature", "http":
			out = append(out, m)
		}
	}
	return out
}
