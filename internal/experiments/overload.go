package experiments

import (
	"fmt"

	"nwdeploy/internal/cluster"
)

// OverloadRow is one cell of the overload-resilience grid: a burst
// amplitude crossed with governor on/off and (at the heavier amplitude)
// warm vs cold replanning, summarized across the run's epochs.
type OverloadRow struct {
	Scenario    string
	BurstFactor float64
	Governor    bool
	Replan      bool
	WarmReplan  bool
	// WorstCoverage/AvgCoverage summarize the wire-audited coverage across
	// epochs; OverBudget counts node-epochs above the tolerated CPU budget
	// and FloorLimited the node-epochs whose remaining load (CPU or memory)
	// is the unsheddable r=1 coverage floor — under the governor every
	// over-budget node is floor-limited.
	WorstCoverage float64
	AvgCoverage   float64
	OverBudget    int
	FloorLimited  int
	ShedWidthMax  float64
	// Replans/MissedReplans/ReplanIters report the drift-replanning side:
	// iterations are the deterministic replan-latency unit, so the warm
	// vs cold rows quantify what warm-starting buys.
	Replans       int
	MissedReplans int
	ReplanIters   int
}

// Overload runs the overload-resilience grid: bursty traffic at two
// amplitudes, with the per-node governor on and off, and drift-triggered
// replanning warm- and cold-started. Rows are deterministic for any
// Workers value.
func Overload(cfg Config) ([]OverloadRow, error) {
	sessions := cfg.sessions(8000)
	epochs := 8
	if cfg.Quick {
		epochs = 5
	}
	base := cluster.OverloadConfig{
		Sessions: sessions, Epochs: epochs, Seed: 29,
		BurstProb: 0.5, BaseJitter: 0.05,
		Probes:  500,
		Workers: cfg.Workers, Metrics: cfg.Metrics, Trace: cfg.Trace,
	}

	scenarios := []struct {
		name string
		mut  func(*cluster.OverloadConfig)
	}{
		// Moderate bursts: the governor absorbs them entirely by shedding;
		// ungoverned nodes run hot.
		{"moderate_ungoverned", func(c *cluster.OverloadConfig) {
			c.BurstFactor = 1.8
		}},
		{"moderate_governed", func(c *cluster.OverloadConfig) {
			c.BurstFactor = 1.8
			c.Governor = true
		}},
		// Heavy sustained bursts: shedding alone is not enough, the drift
		// detector must reprovision — cold vs warm-started re-solves.
		{"heavy_governed", func(c *cluster.OverloadConfig) {
			c.BurstFactor = 2.5
			c.Governor = true
		}},
		{"heavy_cold_replan", func(c *cluster.OverloadConfig) {
			c.BurstFactor = 2.5
			c.Governor = true
			c.Replan = true
			c.ReplanThreshold = 0.08
		}},
		{"heavy_warm_replan", func(c *cluster.OverloadConfig) {
			c.BurstFactor = 2.5
			c.Governor = true
			c.Replan = true
			c.WarmReplan = true
			c.ReplanThreshold = 0.08
		}},
	}

	var rows []OverloadRow
	for _, sc := range scenarios {
		run := base
		sc.mut(&run)
		rep, err := cluster.RunOverload(run)
		if err != nil {
			return nil, fmt.Errorf("experiments: overload %s: %w", sc.name, err)
		}
		row := OverloadRow{
			Scenario:    sc.name,
			BurstFactor: run.BurstFactor,
			Governor:    rep.Governor, Replan: rep.Replan, WarmReplan: rep.WarmReplan,
			WorstCoverage: rep.WorstCoverage, AvgCoverage: rep.AvgCoverage,
			Replans: rep.Replans, MissedReplans: rep.MissedReplans,
			ReplanIters: rep.TotalReplanIters,
		}
		for _, e := range rep.Epochs {
			row.OverBudget += e.OverBudget
			row.FloorLimited += e.Unsatisfied
			if e.ShedWidth > row.ShedWidthMax {
				row.ShedWidthMax = e.ShedWidth
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
