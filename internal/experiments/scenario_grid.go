package experiments

import (
	"fmt"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/nips"
	"nwdeploy/internal/online"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/trace"
)

// ScenarioRow is one cell of the scenario grid: a composable scenario run
// against the live cluster runtime, summarized across epochs, plus — for
// the adversary cell — the FPL regret measurements from the online
// adaptation harness.
type ScenarioRow struct {
	Scenario   string
	Epochs     int
	Redundancy int
	Governor   bool
	Replan     bool
	DataPlane  bool
	// Coverage and floor outcome: FloorHeld means no epoch's wire-audited
	// coverage fell below what the published manifests (minus down nodes
	// and published shed) promised; every breach left a flight-recorder
	// post-mortem behind.
	WorstCoverage float64
	AvgCoverage   float64
	FloorHeld     bool
	Breaches      int
	// Governor outcome: ShedFraction is the run-average fraction of
	// assigned hash width shed; FloorLimited counts node-epochs pinned at
	// the unsheddable r=1 floor.
	ShedFraction float64
	OverBudget   int
	FloorLimited int
	// Drift/replan outcome.
	Replans       int
	MissedReplans int
	// Data-plane and evasion outcome.
	Alerts      int
	Injected    int
	Evaded      int
	EvasionRate float64
	// Adaptive-adversary regret (zero outside the adversary cell):
	// RegretFinal is the final normalized regret of FPL vs the best static
	// plan in hindsight, RegretSlope the fitted growth exponent of the
	// cumulative regret — below 1 is sublinear (0 means FPL matched or
	// beat the static optimum outright).
	RegretFinal float64
	RegretSlope float64
	// SLOViolations counts watchdog rule breaches across the run under
	// the cell's thresholds.
	SLOViolations int
}

// scenarioCell is one grid cell's full parameterization.
type scenarioCell struct {
	name string
	mut  func(*cluster.ScenarioConfig)
	slo  trace.SLO
	// regret switches on the FPL-vs-evasive-adversary harness for this
	// cell.
	regret bool
}

// Scenarios runs the scenario grid: five composable drivers (and one
// explicit composition) against the cluster runtime, each with its own
// SLO-watchdog thresholds, plus the adaptive-adversary regret harness.
// Rows are deterministic for any Workers value.
func Scenarios(cfg Config) ([]ScenarioRow, error) {
	sessions := cfg.sessions(6000)
	epochs := 8
	if cfg.Quick {
		epochs = 6
	}

	// Every cell promises full wire coverage and no dark agents: crashes
	// are absent from this grid, drains stay within r-1, and the governor
	// floor keeps copy 0 deployed. Cells relax individual rules where the
	// scenario legitimately spends them.
	baseSLO := func() trace.SLO {
		slo := trace.Disabled()
		slo.MinWorstCoverage = 0.999
		slo.MinAvgCoverage = 0.999
		slo.MaxDarkAgents = 0
		return slo
	}

	// The synflood cell deploys the SYNFlood module, whose egress units
	// have a single eligible node — redundancy 2 is structurally
	// infeasible there, exactly the paper's point that scope pins some
	// analyses to one location.
	floodModules := func() []bro.ModuleSpec {
		var out []bro.ModuleSpec
		for _, m := range bro.StandardModules() {
			switch m.Name {
			case "http", "signature", "synflood":
				out = append(out, m)
			}
		}
		return out
	}

	cells := []scenarioCell{
		{
			name: "diurnal",
			mut: func(c *cluster.ScenarioConfig) {
				c.Driver = NewDiurnal(31, epochs)
				c.Governor = true
				c.Replan, c.WarmReplan = true, true
				c.ReplanThreshold = 0.12
			},
			slo: baseSLO(),
		},
		{
			name: "flashcrowd",
			mut: func(c *cluster.ScenarioConfig) {
				c.Driver = NewFlashCrowd(epochs)
				c.Governor = true
			},
			slo: baseSLO(),
		},
		{
			name: "synflood",
			mut: func(c *cluster.ScenarioConfig) {
				c.Driver = NewSYNFlood(37, epochs)
				c.Modules = floodModules()
				c.Redundancy = 1
				c.Governor = true
				c.DataPlane = true
			},
			slo: baseSLO(),
		},
		{
			name: "maintenance",
			mut: func(c *cluster.ScenarioConfig) {
				c.Driver = NewMaintenance(epochs)
			},
			slo: baseSLO(),
		},
		{
			name: "maintenance+flashcrowd",
			mut: func(c *cluster.ScenarioConfig) {
				c.Driver = Compose(NewMaintenance(epochs), NewFlashCrowd(epochs))
				c.Governor = true
			},
			// Composition exposes a real interaction: the drain takes one
			// copy and the flash-crowd shed takes the other, so worst-case
			// coverage legitimately dips while the drain window and the
			// spike overlap (the audit predicts the dip — no breach). The
			// cell's SLO bounds the average instead of the worst point.
			slo: func() trace.SLO {
				slo := baseSLO()
				slo.MinWorstCoverage = 0
				slo.MinAvgCoverage = 0.90
				return slo
			}(),
		},
		{
			name: "adversary",
			mut: func(c *cluster.ScenarioConfig) {
				// Diurnal load keeps the governor honest while the
				// adversary steers crafted sessions at the least-covered
				// published ranges.
				c.Driver = Compose(NewDiurnal(31, epochs), NewAdaptiveAdversary(43))
				c.Governor = true
				c.Replan, c.WarmReplan = true, true
				c.ReplanThreshold = 0.12
			},
			slo:    baseSLO(),
			regret: true,
		},
	}

	var rows []ScenarioRow
	for _, cell := range cells {
		run := cluster.ScenarioConfig{
			Sessions: sessions, TrafficSeed: 17, Seed: 23,
			Epochs: epochs, Redundancy: 2,
			Probes:  500,
			Workers: cfg.Workers, Metrics: cfg.Metrics, Trace: cfg.Trace,
			Watchdog: trace.NewWatchdog(cell.slo),
		}
		cell.mut(&run)
		rep, err := cluster.RunScenario(run)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: %w", cell.name, err)
		}
		row := ScenarioRow{
			Scenario: cell.name,
			Epochs:   epochs, Redundancy: rep.Redundancy,
			Governor: rep.Governor, Replan: rep.Replan, DataPlane: run.DataPlane,
			WorstCoverage: rep.WorstCoverage, AvgCoverage: rep.AvgCoverage,
			FloorHeld: rep.FloorHeld, Breaches: rep.Breaches,
			ShedFraction: rep.ShedFraction(),
			Replans:      rep.Replans, MissedReplans: rep.MissedReplans,
			Alerts:   rep.TotalAlerts,
			Injected: rep.TotalInjected, Evaded: rep.TotalEvaded,
			EvasionRate:   rep.EvasionRate(),
			SLOViolations: rep.SLOViolations,
		}
		for _, e := range rep.Epochs {
			row.OverBudget += e.OverBudget
			row.FloorLimited += e.Unsatisfied
		}
		if cell.regret {
			final, slope, err := adversaryRegret(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: scenario %s regret harness: %w", cell.name, err)
			}
			row.RegretFinal, row.RegretSlope = final, slope
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// adversaryRegret runs the FPL online adapter against the manifest-reading
// evasive adversary on the Section 3.5 instance and reports the final
// normalized regret and the fitted cumulative-regret growth exponent.
// Sublinear (exponent < 1, or 0 when FPL beats the static plan outright)
// is Theorem 3.1's promise holding against an adaptive opponent.
func adversaryRegret(cfg Config) (final, slope float64, err error) {
	epochs, rules, paths, sample := 400, 8, 12, 25
	if cfg.Quick {
		epochs, rules, paths, sample = 150, 5, 8, 15
	}
	inst := nips.NewInstance(topology.Internet2(), nips.UnitRules(rules), nips.Config{
		MaxPaths:             paths,
		RuleCapacityFraction: 1, // no TCAM constraint in Section 3.5
		MatchSeed:            3,
	})
	res, err := online.RunVsAdversary(inst, &online.EvasiveAdversary{
		Inst: inst, High: 0.01, Seed: 11,
	}, online.RunConfig{Epochs: epochs, SampleEvery: sample, Seed: 1009})
	if err != nil {
		return 0, 0, err
	}
	series := res.Series
	if len(series) > 0 {
		final = series[len(series)-1].Normalized
	}
	return final, online.RegretSlope(series), nil
}
