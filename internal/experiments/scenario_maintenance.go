package experiments

import (
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/cluster"
)

// MaintenanceScenario walks planned drains across the fleet on the rolling
// schedule from internal/chaos, optionally mixed with a seeded crash
// schedule: the drain-vs-crash contrast is the point, since drains retain
// manifests across the window while crashes lose them. With group size
// below the provisioned redundancy the r-1 tolerance keeps wire coverage
// whole through the entire rolling window.
type MaintenanceScenario struct {
	// Drain parameterizes the rolling window; Nodes is taken from the env
	// when zero.
	Drain chaos.DrainConfig
	// Crashes, when non-nil, overlays unplanned failures on the planned
	// window (an epoch-indexed schedule, as built by chaos.BuildSchedule).
	Crashes *chaos.Schedule

	plan      *chaos.DrainPlan
	planNodes int
}

// NewMaintenance builds the catalog-default rolling maintenance: one node
// at a time, one epoch in the bay and one epoch of settling, starting at
// epoch 2, no crash overlay.
func NewMaintenance(epochs int) *MaintenanceScenario {
	return &MaintenanceScenario{Drain: chaos.DrainConfig{
		Epochs: epochs, Group: 1, Dwell: 1, Gap: 1, Start: 1,
	}}
}

// Name implements Scenario.
func (s *MaintenanceScenario) Name() string { return "maintenance" }

// Step implements Scenario.
func (s *MaintenanceScenario) Step(env *cluster.ScenarioEnv) cluster.Stimulus {
	cfg := s.Drain
	if cfg.Nodes <= 0 {
		cfg.Nodes = env.Nodes
	}
	if cfg.Epochs < env.Epochs {
		cfg.Epochs = env.Epochs
	}
	if s.plan == nil || s.planNodes != cfg.Nodes {
		s.plan = chaos.RollingDrains(cfg)
		s.planNodes = cfg.Nodes
	}
	var st cluster.Stimulus
	if e := env.Epoch - 1; e >= 0 && e < len(s.plan.Drains) {
		st.Drains = s.plan.Drains[e]
	}
	if s.Crashes != nil {
		if e := env.Epoch - 1; e >= 0 && e < len(s.Crashes.Epochs) {
			st.Faults = s.Crashes.Epochs[e]
		}
	}
	return st
}
