package conntrack

import (
	"testing"
	"time"

	"nwdeploy/internal/hashing"
)

func churnTuple(i int) hashing.FiveTuple {
	return hashing.FiveTuple{
		SrcIP: 0x0a000000 | uint32(i), DstIP: 0xc0a80001,
		SrcPort: uint16(1024 + i%40000), DstPort: 443, Proto: 6,
	}
}

// A table at steady eviction churn — every creation balanced by an
// eviction — must not allocate per connection: records recycle through the
// freelist, the map reuses buckets, the heap its array.
func TestUpdateEvictionChurnAllocFree(t *testing.T) {
	tbl := New(Config{MaxEntries: 256, HashKey: 7})
	now := time.Unix(1e9, 0)
	for i := 0; i < 1024; i++ { // warm to steady state
		tbl.Update(churnTuple(i), now, 1, 500)
	}
	i := 1024
	if n := testing.AllocsPerRun(5000, func() {
		tbl.Update(churnTuple(i), now, 1, 500)
		i++
	}); n != 0 {
		t.Fatalf("eviction churn allocates %v per connection, want 0", n)
	}
	if tbl.Len() != 256 {
		t.Fatalf("table size %d, want MaxEntries 256", tbl.Len())
	}
}

// Expiry churn likewise: a burst of connections that all expire before the
// next burst must reuse the expired records.
func TestUpdateExpiryChurnAllocFree(t *testing.T) {
	tbl := New(Config{IdleTimeout: time.Second, HashKey: 7})
	now := time.Unix(1e9, 0)
	burst := func(start int) {
		for i := 0; i < 128; i++ {
			tbl.Update(churnTuple(start+i), now, 1, 500)
		}
	}
	burst(0) // warm up
	now = now.Add(2 * time.Second)
	start := 128
	if n := testing.AllocsPerRun(50, func() {
		burst(start)
		start += 128
		now = now.Add(2 * time.Second) // next call's lazy expiry clears all
	}); n != 0 {
		t.Fatalf("expiry churn allocates %v per burst, want 0", n)
	}
}

// Updates to existing records never allocate.
func TestUpdateExistingAllocFree(t *testing.T) {
	tbl := New(Config{HashKey: 7})
	now := time.Unix(1e9, 0)
	for i := 0; i < 64; i++ {
		tbl.Update(churnTuple(i), now, 1, 500)
	}
	i := 0
	if n := testing.AllocsPerRun(5000, func() {
		now = now.Add(time.Millisecond)
		tbl.Update(churnTuple(i%64), now, 2, 800)
		i++
	}); n != 0 {
		t.Fatalf("update of existing record allocates %v, want 0", n)
	}
}

// Recycled records must be fully reinitialized: no field of a dead
// connection may leak into its successor.
func TestRecycledRecordsFullyReset(t *testing.T) {
	tbl := New(Config{MaxEntries: 1, HashKey: 7})
	now := time.Unix(1e9, 0)
	c1, created := tbl.Update(churnTuple(1), now, 9, 999)
	if !created {
		t.Fatal("first update should create")
	}
	h1 := *c1
	if _, created := tbl.Update(churnTuple(2), now.Add(time.Second), 1, 10); !created {
		t.Fatal("second update should create (evicting the first)")
	}
	// The first record was evicted by the second update, so the third
	// creation must pop it off the freelist.
	c3, created := tbl.Update(churnTuple(3), now.Add(2*time.Second), 1, 10)
	if !created {
		t.Fatal("third update should create")
	}
	if c3 != c1 {
		t.Fatal("third creation did not recycle the evicted record")
	}
	if c3.Packets != 1 || c3.Bytes != 10 || c3.Tuple == h1.Tuple ||
		c3.FirstSeen != now.Add(2*time.Second) || c3.LastSeen != now.Add(2*time.Second) {
		t.Fatalf("recycled record leaked state: %+v (previous %+v)", *c3, h1)
	}
}
