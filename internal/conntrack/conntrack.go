// Package conntrack implements the connection table underlying a NIDS
// node's data path: Bro "maintains a connection record for each end-to-end
// session", and the paper's prototype extends that record with the
// precomputed hash combinations the coordination checks use. The table
// canonicalizes both directions of a session to one record, expires idle
// connections, evicts the oldest records under a hard entry budget (the
// memory cap the placement LP provisions for), and tracks the peak
// occupancy that corresponds to the paper's maximum-resident-memory
// metric.
package conntrack

import (
	"container/heap"
	"time"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/obs"
)

// Conn is one tracked connection record.
type Conn struct {
	// Tuple is the canonical (direction-independent) 5-tuple.
	Tuple hashing.FiveTuple
	// FirstSeen and LastSeen bound the connection's observed lifetime.
	FirstSeen, LastSeen time.Time
	// Packets and Bytes accumulate over both directions.
	Packets, Bytes int
	// SessionHash, FlowHash, SourceHash, DestHash are the precomputed hash
	// fields the prototype carries in the record so policy scripts need
	// not recompute them.
	SessionHash, FlowHash, SourceHash, DestHash float64

	heapIdx int
}

// Config tunes a Table.
type Config struct {
	// IdleTimeout expires records not updated for this long. Zero selects
	// 5 minutes (Bro's inactivity default for established TCP is of this
	// order).
	IdleTimeout time.Duration
	// MaxEntries bounds the table; the oldest records are evicted beyond
	// it. Zero means unbounded.
	MaxEntries int
	// HashKey seeds the record's hash fields.
	HashKey uint32
	// RecordBytes is the accounting size per record; zero selects 424
	// (the prototype's 400-byte record plus 24 bytes of hash fields).
	RecordBytes int
	// Metrics, when non-nil, receives table observability: created,
	// expired, and evicted record counts plus a peak-occupancy gauge.
	// The registry is write-only; table behavior is identical without it
	// (nil is the no-op default; see internal/obs).
	Metrics *obs.Registry
}

// Stats is a table's lifetime accounting.
type Stats struct {
	Created     uint64
	Updated     uint64
	Expired     uint64
	Evicted     uint64
	PeakEntries int
	PeakBytes   int
}

// Table is a connection table. Not safe for concurrent use: a node's data
// path owns its table (parallelize by sharding on FlowHash, as gopacket's
// FastHash-based load balancing does).
type Table struct {
	cfg    Config
	hasher hashing.Hasher

	conns map[hashing.FiveTuple]*Conn
	byAge connHeap // min-heap on LastSeen
	// free recycles removed records: a table at steady churn (expiry or
	// eviction balancing creation) allocates nothing per connection — the
	// map reuses its buckets, the heap its backing array, and records come
	// off this list. The list never outgrows the table's own peak, so it
	// adds no footprint beyond what the table already reached.
	free []*Conn

	stats Stats

	// Metric handles resolved once at construction; all are nil-safe
	// no-ops when Config.Metrics is nil.
	createdC, expiredC, evictedC *obs.Counter
	peakG                        *obs.Gauge
}

// New creates an empty table.
func New(cfg Config) *Table {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.RecordBytes == 0 {
		cfg.RecordBytes = 424
	}
	return &Table{
		cfg:      cfg,
		hasher:   hashing.Hasher{Key: cfg.HashKey},
		conns:    make(map[hashing.FiveTuple]*Conn),
		createdC: cfg.Metrics.Counter("conntrack.created"),
		expiredC: cfg.Metrics.Counter("conntrack.expired"),
		evictedC: cfg.Metrics.Counter("conntrack.evicted"),
		peakG:    cfg.Metrics.Gauge("conntrack.peak_entries"),
	}
}

// canonical orders a tuple so both directions map to one record.
func canonical(ft hashing.FiveTuple) hashing.FiveTuple {
	if ft.SrcIP > ft.DstIP || (ft.SrcIP == ft.DstIP && ft.SrcPort > ft.DstPort) {
		return ft.Reverse()
	}
	return ft
}

// Update records a packet (or packet burst) for the tuple at time now,
// creating the record if needed. It returns the record and whether it was
// created by this call. Expiry of due records happens lazily here.
func (t *Table) Update(ft hashing.FiveTuple, now time.Time, packets, bytes int) (*Conn, bool) {
	t.expireBefore(now.Add(-t.cfg.IdleTimeout))

	key := canonical(ft)
	if c, ok := t.conns[key]; ok {
		c.LastSeen = now
		c.Packets += packets
		c.Bytes += bytes
		heap.Fix(&t.byAge, c.heapIdx)
		t.stats.Updated++
		return c, false
	}

	var c *Conn
	if n := len(t.free); n > 0 {
		c = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	} else {
		c = new(Conn)
	}
	*c = Conn{
		Tuple:     key,
		FirstSeen: now, LastSeen: now,
		Packets: packets, Bytes: bytes,
		SessionHash: t.hasher.Session(ft),
		FlowHash:    t.hasher.Flow(ft),
		SourceHash:  t.hasher.Source(ft),
		DestHash:    t.hasher.Destination(ft),
	}
	t.conns[key] = c
	heap.Push(&t.byAge, c)
	t.stats.Created++
	t.createdC.Add(1)

	if t.cfg.MaxEntries > 0 {
		for len(t.conns) > t.cfg.MaxEntries {
			old := t.byAge.peek()
			t.remove(old)
			t.stats.Evicted++
			t.evictedC.Add(1)
		}
	}
	if n := len(t.conns); n > t.stats.PeakEntries {
		t.stats.PeakEntries = n
		t.stats.PeakBytes = n * t.cfg.RecordBytes
		t.peakG.Max(float64(n))
	}
	return c, true
}

// Lookup returns the record for the tuple (either direction) without
// refreshing it.
func (t *Table) Lookup(ft hashing.FiveTuple) (*Conn, bool) {
	c, ok := t.conns[canonical(ft)]
	return c, ok
}

// Expire removes all records idle at time now and returns how many.
func (t *Table) Expire(now time.Time) int {
	before := t.stats.Expired
	t.expireBefore(now.Add(-t.cfg.IdleTimeout))
	return int(t.stats.Expired - before)
}

func (t *Table) expireBefore(cutoff time.Time) {
	for t.byAge.Len() > 0 {
		oldest := t.byAge.peek()
		if oldest.LastSeen.After(cutoff) {
			return
		}
		t.remove(oldest)
		t.stats.Expired++
		t.expiredC.Add(1)
	}
}

func (t *Table) remove(c *Conn) {
	heap.Remove(&t.byAge, c.heapIdx)
	delete(t.conns, c.Tuple)
	// The record goes back on the freelist and may be reused by the next
	// creation: callers must not retain *Conn pointers past the table
	// operation that could expire or evict them (the data path in
	// internal/packet reads the record synchronously and drops it).
	t.free = append(t.free, c)
}

// Len reports the live record count.
func (t *Table) Len() int { return len(t.conns) }

// Bytes reports the current accounted memory.
func (t *Table) Bytes() int { return len(t.conns) * t.cfg.RecordBytes }

// Stats returns a copy of the lifetime counters.
func (t *Table) Stats() Stats { return t.stats }

// connHeap is a min-heap of records ordered by LastSeen.
type connHeap []*Conn

func (h connHeap) Len() int            { return len(h) }
func (h connHeap) Less(i, j int) bool  { return h[i].LastSeen.Before(h[j].LastSeen) }
func (h connHeap) peek() *Conn         { return h[0] }
func (h *connHeap) Push(x interface{}) { c := x.(*Conn); c.heapIdx = len(*h); *h = append(*h, c) }
func (h connHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *connHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}
