package conntrack

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nwdeploy/internal/hashing"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func tuple(src, dst uint32, sp, dp uint16) hashing.FiveTuple {
	return hashing.FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: 6}
}

func TestBothDirectionsShareOneRecord(t *testing.T) {
	tab := New(Config{})
	ft := tuple(1, 2, 1000, 80)
	c1, created := tab.Update(ft, t0, 3, 300)
	if !created {
		t.Fatal("first update must create")
	}
	c2, created := tab.Update(ft.Reverse(), t0.Add(time.Second), 2, 200)
	if created {
		t.Fatal("reverse direction created a second record")
	}
	if c1 != c2 {
		t.Fatal("directions mapped to different records")
	}
	if c1.Packets != 5 || c1.Bytes != 500 {
		t.Fatalf("accumulation wrong: %+v", c1)
	}
	if tab.Len() != 1 {
		t.Fatalf("table has %d records, want 1", tab.Len())
	}
}

func TestRecordCarriesHashes(t *testing.T) {
	tab := New(Config{HashKey: 9})
	h := hashing.Hasher{Key: 9}
	ft := tuple(10, 20, 1234, 443)
	c, _ := tab.Update(ft, t0, 1, 100)
	if c.SessionHash != h.Session(ft) || c.FlowHash != h.Flow(ft) ||
		c.SourceHash != h.Source(ft) || c.DestHash != h.Destination(ft) {
		t.Fatal("precomputed hash fields disagree with the hasher")
	}
	// Session hash must be direction-invariant inside the record too.
	if c.SessionHash != h.Session(ft.Reverse()) {
		t.Fatal("session hash not canonical")
	}
}

func TestIdleExpiry(t *testing.T) {
	tab := New(Config{IdleTimeout: time.Minute})
	tab.Update(tuple(1, 2, 1, 80), t0, 1, 10)
	tab.Update(tuple(3, 4, 2, 80), t0.Add(30*time.Second), 1, 10)
	if n := tab.Expire(t0.Add(61 * time.Second)); n != 1 {
		t.Fatalf("expired %d, want 1 (only the first record is idle)", n)
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d, want 1", tab.Len())
	}
	if _, ok := tab.Lookup(tuple(1, 2, 1, 80)); ok {
		t.Fatal("idle record still present")
	}
	if _, ok := tab.Lookup(tuple(3, 4, 2, 80)); !ok {
		t.Fatal("fresh record expired")
	}
}

func TestUpdateRefreshesIdleClock(t *testing.T) {
	tab := New(Config{IdleTimeout: time.Minute})
	ft := tuple(1, 2, 1, 80)
	tab.Update(ft, t0, 1, 10)
	// Keep touching it; it must survive well past the original deadline.
	for i := 1; i <= 5; i++ {
		tab.Update(ft, t0.Add(time.Duration(i)*45*time.Second), 1, 10)
	}
	if n := tab.Expire(t0.Add(5*45*time.Second + 59*time.Second)); n != 0 {
		t.Fatalf("refreshed record expired (%d)", n)
	}
}

func TestEvictionUnderEntryBudget(t *testing.T) {
	tab := New(Config{MaxEntries: 10, IdleTimeout: time.Hour})
	for i := 0; i < 50; i++ {
		tab.Update(tuple(uint32(i+1), 1000, uint16(i+1), 80), t0.Add(time.Duration(i)*time.Second), 1, 10)
	}
	if tab.Len() != 10 {
		t.Fatalf("len = %d, want 10", tab.Len())
	}
	st := tab.Stats()
	if st.Evicted != 40 {
		t.Fatalf("evicted = %d, want 40", st.Evicted)
	}
	// Only the newest records survive.
	for i := 40; i < 50; i++ {
		if _, ok := tab.Lookup(tuple(uint32(i+1), 1000, uint16(i+1), 80)); !ok {
			t.Fatalf("recent record %d evicted", i)
		}
	}
}

func TestPeakTracking(t *testing.T) {
	tab := New(Config{IdleTimeout: time.Minute, RecordBytes: 424})
	for i := 0; i < 20; i++ {
		tab.Update(tuple(uint32(i+1), 9, 1, 80), t0.Add(time.Duration(i)*time.Second), 1, 10)
	}
	// Everything expires...
	tab.Expire(t0.Add(time.Hour))
	if tab.Len() != 0 {
		t.Fatal("expire left records")
	}
	st := tab.Stats()
	// ...but the peak stands: 20 concurrent records.
	if st.PeakEntries != 20 || st.PeakBytes != 20*424 {
		t.Fatalf("peak = %d entries / %d bytes, want 20 / %d", st.PeakEntries, st.PeakBytes, 20*424)
	}
	if tab.Bytes() != 0 {
		t.Fatalf("live bytes = %d, want 0", tab.Bytes())
	}
}

// TestQuickNoExpiredSurvivors: after Expire(now), no surviving record is
// older than the idle timeout — for arbitrary interleavings of updates.
func TestQuickNoExpiredSurvivors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := New(Config{IdleTimeout: time.Minute})
		now := t0
		for i := 0; i < 300; i++ {
			now = now.Add(time.Duration(rng.Intn(20)) * time.Second)
			ft := tuple(uint32(rng.Intn(30)+1), uint32(rng.Intn(30)+100), uint16(rng.Intn(5)+1), 80)
			tab.Update(ft, now, 1, 40)
		}
		tab.Expire(now)
		cutoff := now.Add(-time.Minute)
		for _, c := range tab.conns {
			if !c.LastSeen.After(cutoff) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEntryBudgetInvariant: the table never exceeds MaxEntries.
func TestQuickEntryBudgetInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := 5 + rng.Intn(20)
		tab := New(Config{MaxEntries: budget, IdleTimeout: time.Hour})
		now := t0
		for i := 0; i < 200; i++ {
			now = now.Add(time.Second)
			ft := tuple(rng.Uint32()|1, rng.Uint32()|1, uint16(rng.Intn(65535)+1), 80)
			tab.Update(ft, now, 1, 40)
			if tab.Len() > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdateHot(b *testing.B) {
	tab := New(Config{IdleTimeout: time.Hour})
	ft := tuple(1, 2, 1000, 80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Update(ft, t0.Add(time.Duration(i)), 1, 100)
	}
}

func BenchmarkUpdateChurn(b *testing.B) {
	tab := New(Config{IdleTimeout: time.Minute, MaxEntries: 4096})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ft := tuple(uint32(i)|1, uint32(i>>4)|1, uint16(i%60000+1), 80)
		tab.Update(ft, t0.Add(time.Duration(i)*time.Millisecond), 1, 100)
	}
}
