package governor

import (
	"math"
	"testing"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
)

// boundaryPlan hand-builds a two-unit plan with power-of-two volumes and
// caps so every load quantity in the shed walk is exact in float64. Both
// units split 50/50 across nodes 0 and 1 at redundancy 2, so node 1 holds
// exactly two sheddable (copy-1) full-range slices of 1.0 CPU load each:
// budget 2.0, tolerated limit 2.5 at Tolerance 0.25. Items/MemPerItem are
// zero, so CPU is always the binding resource.
func boundaryPlan() *core.Plan {
	topo := topology.Internet2()
	inst := &core.Instance{
		Topo: topo,
		Classes: []core.Class{
			{Name: "sig", Scope: core.PerPath, Agg: core.BySession, CPUPerPkt: 1},
		},
		Units: []core.CoordUnit{
			{Class: 0, Key: [2]int{0, 1}, Nodes: []int{0, 1}, Pkts: 1024},
			{Class: 0, Key: [2]int{2, 3}, Nodes: []int{0, 1}, Pkts: 1024},
		},
		Caps: core.UniformCaps(topo.N(), 1024, 1),
	}
	return &core.Plan{
		Inst:       inst,
		Redundancy: 2,
		Assignments: []core.Assignment{
			{Unit: 0, Frac: []float64{0.5, 0.5}},
			{Unit: 1, Frac: []float64{0.5, 0.5}},
		},
	}
}

func boundaryGovernor(t *testing.T) *Governor {
	t.Helper()
	g, err := New(boundaryPlan(), 1, hashing.Hasher{Key: 7}, Config{Tolerance: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if cpu, _ := g.Budget(); cpu != 2.0 {
		t.Fatalf("boundary fixture budget = %v, want exactly 2.0", cpu)
	}
	return g
}

// Exact whole-slice boundary: scales [2.0, 2.5] put the projection at 4.5
// against the 2.5 limit, so the overrun (2.0) exactly equals the first
// sheddable slice's offered load. The split fraction computes to exactly
// 1.0 — the f >= 1 clamp must take the whole slice, land the residual load
// bitwise on the limit, and stop without touching the second slice.
func TestShedExactWholeSliceBoundary(t *testing.T) {
	g := boundaryGovernor(t)
	rep, err := g.PlanEpoch([]float64{2.0, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProjectedCPU != 4.5 {
		t.Fatalf("projection %v, want exactly 4.5", rep.ProjectedCPU)
	}
	if len(rep.Shed) != 1 {
		t.Fatalf("exact whole-slice overrun shed %d ranges, want 1: %+v", len(rep.Shed), rep.Shed)
	}
	sr := rep.Shed[0]
	if sr.Unit != 0 || sr.Copy != 1 || sr.Range.Lo != 0 || sr.Range.Hi != 1 {
		t.Fatalf("shed the wrong slice: %+v", sr)
	}
	if rep.CPUAfter != 2.5 {
		t.Fatalf("post-shed load %v, want bitwise 2.5 (the limit)", rep.CPUAfter)
	}
	if !rep.Satisfied {
		t.Fatal("load exactly at the tolerated limit reported unsatisfied")
	}
	if rep.ShedWidth != 1 {
		t.Fatalf("shed width %v, want exactly 1", rep.ShedWidth)
	}
}

// Exact partial-slice boundary: one ULP-scale epsilon below the whole-slice
// case, the final (here: only) shed slice must split, giving up exactly the
// fraction that lands the residual load on the limit — budget exactly
// equals cumulative post-shed load, reached through the partial-split path.
// eps = 2^-40 keeps every intermediate representable, so the asserts are
// bitwise, not tolerance-based.
func TestShedPartialFinalSliceExactFit(t *testing.T) {
	eps := math.Ldexp(1, -40)
	g := boundaryGovernor(t)
	rep, err := g.PlanEpoch([]float64{2.0, 2.5 - eps})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shed) != 1 {
		t.Fatalf("partial overrun shed %d ranges, want 1: %+v", len(rep.Shed), rep.Shed)
	}
	sr := rep.Shed[0]
	wantF := 1 - eps/2 // (2.0 - eps) / 2.0, exact in float64
	if sr.Range.Hi != 1 || sr.Range.Lo != 1-wantF {
		t.Fatalf("partial cut %+v, want [%v, 1)", sr.Range, 1-wantF)
	}
	if rep.CPUAfter != 2.5 {
		t.Fatalf("post-shed load %v, want bitwise 2.5", rep.CPUAfter)
	}
	if !rep.Satisfied {
		t.Fatal("exact-fit partial shed reported unsatisfied")
	}
	// The floor copy was never touched and a scale-1 epoch restores fully.
	rep, err = g.PlanEpoch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShedWidth != 0 || g.ShedWidth() != 0 {
		t.Fatalf("restore after exact-fit shed left width %v", rep.ShedWidth)
	}
}

// One ULP-scale epsilon above the whole-slice boundary: the walk must take
// the whole first slice, then split a vanishing sliver off the second —
// terminating satisfied, never looping, never reporting floor-limited while
// sheddable width remains. This is the off-by-ULP edge: the sliver math is
// allowed rounding crumbs, but only at the 1e-12 scale.
func TestShedHairAboveWholeSliceBoundary(t *testing.T) {
	eps := math.Ldexp(1, -40)
	g := boundaryGovernor(t)
	rep, err := g.PlanEpoch([]float64{2.0, 2.5 + eps})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shed) != 2 {
		t.Fatalf("hair-above overrun shed %d ranges, want full slice + sliver: %+v", len(rep.Shed), rep.Shed)
	}
	if first := rep.Shed[0]; first.Unit != 0 || first.Range.Width() != 1 {
		t.Fatalf("first shed not the whole unit-0 slice: %+v", first)
	}
	if sliver := rep.Shed[1]; sliver.Unit != 1 || sliver.Range.Width() > 1e-9 {
		t.Fatalf("second shed not a sliver of unit 1: %+v", sliver)
	}
	if !rep.Satisfied {
		t.Fatalf("governor reported floor-limited with sheddable width left (after %v, limit 2.5)", rep.CPUAfter)
	}
	if rep.CPUAfter > 2.5+1e-12 {
		t.Fatalf("post-shed load %v above limit beyond rounding crumbs", rep.CPUAfter)
	}
	for _, sr := range rep.Shed {
		if sr.Copy < 1 {
			t.Fatalf("boundary walk shed floor copy: %+v", sr)
		}
	}
}
