package governor

import (
	"fmt"

	"nwdeploy/internal/ledger"
)

// Attestation is the ledger-committed form of one governing decision:
// the node, its floor configuration, the exact ranges given up, the load
// projections that justified them, and a floor-intactness bit recomputed
// from the shed list itself (not copied from intent). Committed per
// overload epoch, the chain of attestations is the non-repudiable answer
// to "did shedding ever breach the r = 1 coverage floor?".
type Attestation struct {
	Node        int
	FloorCopies int
	// Satisfied echoes Report.Satisfied: post-shed load fit the tolerated
	// budget. FloorIntact attests that no shed range touched a redundancy
	// copy below FloorCopies — the invariant the coverage floor rests on.
	Satisfied   bool
	FloorIntact bool

	ProjectedCPU, ProjectedMem float64
	BudgetCPU, BudgetMem       float64
	CPUAfter, MemAfter         float64
	ShedWidth                  float64
	Shed                       []ShedRange
}

// Attest derives the attestation of one epoch's report. FloorIntact is
// computed by checking every shed range's copy against the configured
// floor, so a governor bug that shed a floor copy would be attested as a
// violation, not papered over.
func (g *Governor) Attest(rep Report) Attestation {
	a := Attestation{
		Node: rep.Node, FloorCopies: g.cfg.FloorCopies,
		Satisfied: rep.Satisfied, FloorIntact: true,
		ProjectedCPU: rep.ProjectedCPU, ProjectedMem: rep.ProjectedMem,
		BudgetCPU: rep.BudgetCPU, BudgetMem: rep.BudgetMem,
		CPUAfter: rep.CPUAfter, MemAfter: rep.MemAfter,
		ShedWidth: rep.ShedWidth,
		Shed:      append([]ShedRange(nil), rep.Shed...),
	}
	for _, s := range a.Shed {
		if s.Copy < a.FloorCopies {
			a.FloorIntact = false
		}
	}
	return a
}

// Encode renders the attestation in the ledger's canonical binary form.
// Non-finite projections or range bounds are rejected with
// ledger.ErrNonFinite rather than hashed.
func (a Attestation) Encode() ([]byte, error) {
	var e ledger.Enc
	e.I64(int64(a.Node))
	e.I64(int64(a.FloorCopies))
	e.Bool(a.Satisfied)
	e.Bool(a.FloorIntact)
	e.F64(a.ProjectedCPU)
	e.F64(a.ProjectedMem)
	e.F64(a.BudgetCPU)
	e.F64(a.BudgetMem)
	e.F64(a.CPUAfter)
	e.F64(a.MemAfter)
	e.F64(a.ShedWidth)
	e.U64(uint64(len(a.Shed)))
	for _, s := range a.Shed {
		e.I64(int64(s.Unit))
		e.I64(int64(s.Copy))
		e.F64(s.Range.Lo)
		e.F64(s.Range.Hi)
	}
	b, err := e.Finish()
	if err != nil {
		return nil, fmt.Errorf("governor: attestation node %d: %w", a.Node, err)
	}
	return b, nil
}

// DecodeAttestation parses a canonical attestation — the offline
// verifier's read path.
func DecodeAttestation(b []byte) (Attestation, error) {
	d := ledger.NewDec(b)
	a := Attestation{
		Node:        int(d.I64()),
		FloorCopies: int(d.I64()),
		Satisfied:   d.Bool(),
		FloorIntact: d.Bool(),
	}
	a.ProjectedCPU = d.F64()
	a.ProjectedMem = d.F64()
	a.BudgetCPU = d.F64()
	a.BudgetMem = d.F64()
	a.CPUAfter = d.F64()
	a.MemAfter = d.F64()
	a.ShedWidth = d.F64()
	n := d.U64()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		var s ShedRange
		s.Unit = int(d.I64())
		s.Copy = int(d.I64())
		s.Range.Lo = d.F64()
		s.Range.Hi = d.F64()
		a.Shed = append(a.Shed, s)
	}
	if err := d.Done(); err != nil {
		return Attestation{}, fmt.Errorf("governor: attestation: %w", err)
	}
	return a, nil
}
