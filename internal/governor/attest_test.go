package governor

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/ledger"
)

func TestAttestationRoundTrip(t *testing.T) {
	a := Attestation{
		Node: 3, FloorCopies: 1, Satisfied: true, FloorIntact: true,
		ProjectedCPU: 1.25, ProjectedMem: 0.5,
		BudgetCPU: 1.0, BudgetMem: 0.75,
		CPUAfter: 0.9, MemAfter: 0.5, ShedWidth: 0.35,
		Shed: []ShedRange{
			{Unit: 7, Copy: 1, Range: hashing.Range{Lo: 0.25, Hi: 0.5}},
			{Unit: 9, Copy: 2, Range: hashing.Range{Lo: 0, Hi: 0.1}},
		},
	}
	b, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAttestation(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", a, back)
	}
	if _, err := DecodeAttestation(b[:len(b)-1]); err == nil {
		t.Fatal("truncated attestation decoded")
	}
	if _, err := DecodeAttestation(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("padded attestation decoded")
	}
}

func TestAttestationRejectsNonFinite(t *testing.T) {
	a := Attestation{Node: 1, ProjectedCPU: math.NaN()}
	if _, err := a.Encode(); !errors.Is(err, ledger.ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
	a = Attestation{Node: 1, Shed: []ShedRange{{Range: hashing.Range{Lo: 0, Hi: math.Inf(1)}}}}
	if _, err := a.Encode(); !errors.Is(err, ledger.ErrNonFinite) {
		t.Fatalf("shed bound err = %v, want ErrNonFinite", err)
	}
}

// FloorIntact must be recomputed from the shed list, not trusted: a shed
// range below the floor flips it false even when Satisfied claims
// success.
func TestAttestRecomputesFloorIntact(t *testing.T) {
	g := &Governor{cfg: Config{FloorCopies: 1}.withDefaults()}
	rep := Report{Node: 0, Satisfied: true, Shed: []ShedRange{
		{Unit: 1, Copy: 1, Range: hashing.Range{Lo: 0, Hi: 0.5}},
	}}
	if a := g.Attest(rep); !a.FloorIntact {
		t.Fatal("copy >= floor attested as a violation")
	}
	rep.Shed = append(rep.Shed, ShedRange{Unit: 2, Copy: 0, Range: hashing.Range{Lo: 0, Hi: 0.1}})
	if a := g.Attest(rep); a.FloorIntact {
		t.Fatal("floor-copy shed not attested as a violation")
	}
}
