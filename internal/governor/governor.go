// Package governor implements per-node load governing for the data plane:
// graceful, deterministic load shedding when a node's offered load exceeds
// the budget the placement LP predicted for it.
//
// The paper's deployment (Section 2.2) plans against traffic reports, so a
// node's achieved load tracks its predicted load only while traffic stays
// near the planned volumes. Bursts between replans would otherwise either
// overrun the node (dropping packets indiscriminately) or force an
// emergency re-solve. The governor instead sheds *responsibility*: it
// shrinks the node's hash ranges by whole or partial manifest slices, in
// increasing order of drop value, and never touches copy 0 of any unit —
// so the network-wide coverage floor of one complete analyst per
// coordination unit (the r = 1 guarantee of Section 2.5) survives any
// combination of nodes shedding, by local reasoning alone.
//
// Everything the governor does is a pure function of the plan and the
// offered per-unit volume scales: no clocks, no randomness. Two governors
// built from the same plan and fed the same scales shed identical ranges,
// which is what makes cluster runs reproducible under any worker count.
package governor

import (
	"fmt"
	"sort"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// Config tunes one node's governor. The zero value selects the defaults.
type Config struct {
	// Tolerance is the allowed overrun fraction: the governor sheds only
	// when projected load exceeds budget*(1+Tolerance). Zero selects 0.1.
	Tolerance float64
	// Sustain is how many consecutive over-budget epochs must accumulate
	// before shedding engages (a debounce against one-epoch blips). Zero
	// selects 1: shed in the same epoch the overrun is projected.
	Sustain int
	// FloorCopies is the number of redundancy copies that are never shed,
	// counted from copy 0. Zero selects 1 — copy 0 is untouchable, which
	// preserves the network-wide r = 1 coverage floor. Values above 1
	// protect deeper redundancy at the price of less shedding headroom.
	FloorCopies int
	// ClassValue ranks classes by the value of their analysis, indexed
	// like the instance's Classes; lower values shed first. Nil values all
	// classes equally, falling back to class-index order.
	ClassValue []float64
	// Metrics, when non-nil, receives shed observability (write-only; the
	// governed behavior is identical with or without it).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Tolerance == 0 {
		c.Tolerance = 0.1
	}
	if c.Sustain == 0 {
		c.Sustain = 1
	}
	if c.FloorCopies == 0 {
		c.FloorCopies = 1
	}
	return c
}

// ShedRange is one shed piece: the governor gave up Range of Unit's hash
// space within redundancy copy Copy.
type ShedRange struct {
	Unit  int
	Copy  int
	Range hashing.Range
}

// Report describes one epoch's governing decision for a node. All fields
// are logical quantities derived from the plan and the offered scales.
type Report struct {
	Node int
	// ProjectedCPU/Mem are the full-manifest load fractions at the offered
	// volumes; BudgetCPU/Mem are the same at plan volumes (the LP's
	// prediction for this node).
	ProjectedCPU, ProjectedMem float64
	BudgetCPU, BudgetMem       float64
	// CPUAfter/MemAfter are the projected loads after shedding.
	CPUAfter, MemAfter float64
	// ShedWidth is the total hash-space width given up across all units.
	ShedWidth float64
	// Shed lists the exact ranges given up, in shed order.
	Shed []ShedRange
	// Satisfied reports whether the post-shed load fits budget*(1+tol).
	// False means the node exhausted its sheddable slices (everything
	// above the coverage floor) and still projects over budget.
	Satisfied bool
}

// Over reports whether the epoch projected over the tolerated budget
// before any shedding.
func (r Report) Over() bool {
	return r.ProjectedCPU > r.BudgetCPU || r.ProjectedMem > r.BudgetMem
}

// slice is one manifest slice with its precomputed unit-scale-1 load
// contributions.
type slice struct {
	core.ManifestSlice
	cpu, mem float64 // contribution at scale 1 (full slice width)
}

// Governor governs one node's load against its planned budget.
type Governor struct {
	cfg    Config
	plan   *core.Plan
	hasher hashing.Hasher
	node   int

	slices []slice
	order  []int // indices into slices: sheddable, in shed order

	budgetCPU, budgetMem float64

	over int // consecutive over-budget epochs

	shed      map[int]hashing.RangeSet // unit -> ranges this node dropped
	shedWidth float64

	span trace.Span // per-epoch trace context (zero = untraced)
}

// New builds the governor for one node of a solved plan. The hasher must
// match the one the node's data path uses, so the shed predicate and the
// packet path agree on every session's hash point.
func New(plan *core.Plan, node int, h hashing.Hasher, cfg Config) (*Governor, error) {
	if node < 0 || node >= plan.Inst.Topo.N() {
		return nil, fmt.Errorf("governor: node %d out of range [0,%d)", node, plan.Inst.Topo.N())
	}
	cfg = cfg.withDefaults()
	if cv := cfg.ClassValue; cv != nil && len(cv) != len(plan.Inst.Classes) {
		return nil, fmt.Errorf("governor: %d class values for %d classes", len(cv), len(plan.Inst.Classes))
	}
	g := &Governor{cfg: cfg, plan: plan, hasher: h, node: node}

	inst := plan.Inst
	for _, ms := range plan.Slices()[node] {
		u := inst.Units[ms.Unit]
		c := inst.Classes[u.Class]
		w := ms.Range.Width()
		g.slices = append(g.slices, slice{
			ManifestSlice: ms,
			cpu:           w * c.CPUPerPkt * u.Pkts / inst.Caps[node].CPU,
			mem:           w * c.MemPerItem * u.Items / inst.Caps[node].Mem,
		})
	}
	for _, s := range g.slices {
		g.budgetCPU += s.cpu
		g.budgetMem += s.mem
	}

	// Shed order: lowest drop value first, then class index, then the
	// outermost redundancy copy (preserving inner copies longest), then
	// unit and range position for a total, deterministic order.
	value := func(class int) float64 {
		if cfg.ClassValue == nil {
			return 0
		}
		return cfg.ClassValue[class]
	}
	for i, s := range g.slices {
		if s.Copy >= cfg.FloorCopies {
			g.order = append(g.order, i)
		}
	}
	sort.Slice(g.order, func(a, b int) bool {
		sa, sb := g.slices[g.order[a]], g.slices[g.order[b]]
		ca, cb := inst.Units[sa.Unit].Class, inst.Units[sb.Unit].Class
		if va, vb := value(ca), value(cb); va != vb {
			return va < vb
		}
		if ca != cb {
			return ca < cb
		}
		if sa.Copy != sb.Copy {
			return sa.Copy > sb.Copy
		}
		if sa.Unit != sb.Unit {
			return sa.Unit < sb.Unit
		}
		return sa.Range.Lo < sb.Range.Lo
	})
	return g, nil
}

// Node returns the governed node's ID.
func (g *Governor) Node() int { return g.node }

// AttachSpan installs the trace context the next PlanEpoch records its
// decision events (overrun, shed_planned, shed_restore, floor_limited)
// under — set per epoch by the cluster runtime. The zero Span (the
// default) records nothing; the governed behavior is identical either
// way.
func (g *Governor) AttachSpan(sp trace.Span) { g.span = sp }

// Budget returns the node's planned CPU and memory load fractions — the
// LP's prediction at plan volumes.
func (g *Governor) Budget() (cpu, mem float64) { return g.budgetCPU, g.budgetMem }

// PlanEpoch runs the admission decision for one epoch given the offered
// per-unit volume scales (observed volume / plan volume, indexed like the
// instance's Units; a nil slice means scale 1 everywhere). It recomputes
// the shed set from scratch: when the offered load fits the tolerated
// budget again, previously shed ranges are restored automatically.
func (g *Governor) PlanEpoch(scale []float64) (Report, error) {
	inst := g.plan.Inst
	if scale != nil && len(scale) != len(inst.Units) {
		return Report{}, fmt.Errorf("governor: %d scales for %d units", len(scale), len(inst.Units))
	}
	sc := func(unit int) float64 {
		if scale == nil {
			return 1
		}
		return scale[unit]
	}

	rep := Report{Node: g.node, BudgetCPU: g.budgetCPU, BudgetMem: g.budgetMem}
	for _, s := range g.slices {
		rep.ProjectedCPU += s.cpu * sc(s.Unit)
		rep.ProjectedMem += s.mem * sc(s.Unit)
	}
	limCPU := g.budgetCPU * (1 + g.cfg.Tolerance)
	limMem := g.budgetMem * (1 + g.cfg.Tolerance)

	if rep.ProjectedCPU <= limCPU && rep.ProjectedMem <= limMem {
		// Fits again: restore everything.
		if g.shedWidth > 0 {
			g.cfg.Metrics.Add("governor.restores", 1)
			g.span.Event(trace.EvShedRestore, trace.F64("width", g.shedWidth))
		}
		g.over = 0
		g.shed = nil
		g.shedWidth = 0
		rep.CPUAfter, rep.MemAfter = rep.ProjectedCPU, rep.ProjectedMem
		rep.Satisfied = true
		g.publish(rep)
		return rep, nil
	}

	g.over++
	g.cfg.Metrics.Add("governor.overloads", 1)
	g.span.Event(trace.EvOverrun,
		trace.F64("projected_cpu", rep.ProjectedCPU), trace.F64("budget_cpu", rep.BudgetCPU))
	if g.over < g.cfg.Sustain {
		// Debounced: tolerate the overrun, keep the previous shed state.
		rep.CPUAfter, rep.MemAfter = g.applyShed(rep.ProjectedCPU, rep.ProjectedMem, sc)
		rep.Shed, rep.ShedWidth = g.shedList(), g.shedWidth
		rep.Satisfied = rep.CPUAfter <= limCPU && rep.MemAfter <= limMem
		g.publish(rep)
		return rep, nil
	}

	// Shed: walk the drop order until the projection fits, splitting the
	// final slice so exactly the needed width is given up.
	g.shed = make(map[int]hashing.RangeSet)
	g.shedWidth = 0
	cpu, mem := rep.ProjectedCPU, rep.ProjectedMem
	for _, idx := range g.order {
		if cpu <= limCPU && mem <= limMem {
			break
		}
		s := g.slices[idx]
		ccpu := s.cpu * sc(s.Unit)
		cmem := s.mem * sc(s.Unit)
		if ccpu <= 0 && cmem <= 0 {
			continue // weightless slice: shedding it buys nothing
		}
		// Fraction of this slice needed to clear the binding resource.
		f := 0.0
		if ccpu > 0 {
			f = (cpu - limCPU) / ccpu
		}
		if cmem > 0 {
			if fm := (mem - limMem) / cmem; fm > f {
				f = fm
			}
		}
		if f >= 1 {
			f = 1
		}
		w := s.Range.Width() * f
		cut := hashing.Range{Lo: s.Range.Hi - w, Hi: s.Range.Hi}.Clamp()
		g.shed[s.Unit] = append(g.shed[s.Unit], cut)
		g.shedWidth += cut.Width()
		rep.Shed = append(rep.Shed, ShedRange{Unit: s.Unit, Copy: s.Copy, Range: cut})
		cpu -= ccpu * f
		mem -= cmem * f
	}
	rep.CPUAfter, rep.MemAfter = cpu, mem
	rep.ShedWidth = g.shedWidth
	rep.Satisfied = cpu <= limCPU && mem <= limMem
	g.cfg.Metrics.Add("governor.sheds", 1)
	g.span.Event(trace.EvShedPlanned,
		trace.F64("width", rep.ShedWidth), trace.Int("slices", len(rep.Shed)))
	if !rep.Satisfied {
		// Everything above the coverage floor is gone and the node still
		// projects over budget: it runs hot by design rather than break r=1.
		g.span.Event(trace.EvFloorLimited, trace.F64("cpu_after", rep.CPUAfter))
	}
	g.publish(rep)
	return rep, nil
}

// publish pushes the epoch's gauges to the metrics registry.
func (g *Governor) publish(rep Report) {
	m := g.cfg.Metrics
	if m == nil {
		return
	}
	m.Gauge(fmt.Sprintf("governor.node%d.shed_width", g.node)).Set(rep.ShedWidth)
	m.Gauge(fmt.Sprintf("governor.node%d.load_after", g.node)).Set(rep.CPUAfter)
}

// applyShed projects the current shed state onto offered loads.
func (g *Governor) applyShed(cpu, mem float64, sc func(int) float64) (float64, float64) {
	if len(g.shed) == 0 {
		return cpu, mem
	}
	for _, s := range g.slices {
		rs, ok := g.shed[s.Unit]
		if !ok {
			continue
		}
		// Width of this slice that the shed state covers.
		kept := hashing.RangeSet{s.Range}.Subtract(rs)
		cutW := s.Range.Width() - kept.Width()
		if cutW <= 0 {
			continue
		}
		frac := cutW / s.Range.Width()
		cpu -= s.cpu * sc(s.Unit) * frac
		mem -= s.mem * sc(s.Unit) * frac
	}
	return cpu, mem
}

// shedList flattens the shed state in deterministic slice order.
func (g *Governor) shedList() []ShedRange {
	var out []ShedRange
	for _, s := range g.slices {
		rs, ok := g.shed[s.Unit]
		if !ok {
			continue
		}
		for _, r := range rs {
			inter := hashing.Range{Lo: maxf(r.Lo, s.Range.Lo), Hi: minf(r.Hi, s.Range.Hi)}
			if !inter.IsEmpty() {
				out = append(out, ShedRange{Unit: s.Unit, Copy: s.Copy, Range: inter})
			}
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ShedWidth returns the total hash-space width currently shed.
func (g *Governor) ShedWidth() float64 { return g.shedWidth }

// ShedRanges returns a copy of the current shed state, keyed by unit — the
// wire form the controller publishes so peers and audits can subtract the
// dropped responsibility exactly.
func (g *Governor) ShedRanges() map[int]hashing.RangeSet {
	if len(g.shed) == 0 {
		return nil
	}
	out := make(map[int]hashing.RangeSet, len(g.shed))
	for ui, rs := range g.shed {
		out[ui] = append(hashing.RangeSet(nil), rs...)
	}
	return out
}

// Covers reports whether hash point x of the unit falls in this node's
// shed (dropped) ranges — the audit predicate.
func (g *Governor) Covers(unit int, x float64) bool {
	return g.shed[unit].Contains(x)
}

// Sheds is the per-packet filter: it reports whether the node's governor
// has dropped responsibility for this session under the class. It is a
// pure function of the epoch's shed state, so the engine may evaluate it
// once per (module, session) and reuse the answer — the same contract the
// wire decider obeys. It implements bro.ShedFilter.
func (g *Governor) Sheds(class int, s traffic.Session) bool {
	if len(g.shed) == 0 {
		return false
	}
	ui, ok := g.plan.Inst.UnitFor(class, s)
	if !ok {
		return false
	}
	rs, ok := g.shed[ui]
	if !ok {
		return false
	}
	return rs.Contains(g.plan.Inst.Classes[class].HashOf(g.hasher, s.Tuple))
}

// Coverage audits the network-wide residual coverage when every node in
// govs (indexed by node ID; nil entries mean no governor) drops its shed
// ranges: a point counts as covered when some live manifest contains it
// and that node has not shed it. With FloorCopies >= 1 the worst coverage
// can never fall below full, because copy 0 is never shed — this audit is
// how tests and the cluster runtime verify that invariant rather than
// assume it.
func Coverage(plan *core.Plan, govs []*Governor, probes int) (worst, avg float64) {
	return core.ProbeCoverage(len(plan.Inst.Units), probes, func(ui int, x float64) bool {
		for _, node := range plan.Inst.Units[ui].Nodes {
			if !plan.Manifests[node].Ranges[ui].Contains(x) {
				continue
			}
			if node < len(govs) && govs[node] != nil && govs[node].Covers(ui, x) {
				continue
			}
			return true
		}
		return false
	})
}
