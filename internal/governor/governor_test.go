package governor

import (
	"math"
	"reflect"
	"testing"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func testClasses() []core.Class {
	return []core.Class{
		{Name: "signature", Scope: core.PerPath, Agg: core.BySession, CPUPerPkt: 1, MemPerItem: 400},
		{Name: "http", Scope: core.PerPath, Agg: core.BySession, Ports: []uint16{80}, CPUPerPkt: 2, MemPerItem: 600},
	}
}

// testPlan solves a redundancy-2 plan over path-scoped classes, the domain
// where the governor has sheddable (copy >= 1) slices to work with.
func testPlan(t *testing.T, r int) (*core.Plan, []traffic.Session) {
	t.Helper()
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	ss := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 3000, Seed: 11})
	inst, err := core.BuildInstance(topo, testClasses(), ss, core.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.SolveOpts(inst, core.SolveOptions{Redundancy: r})
	if err != nil {
		t.Fatal(err)
	}
	return plan, ss
}

// uniformScale builds a per-unit scale vector with the same factor
// everywhere.
func uniformScale(plan *core.Plan, f float64) []float64 {
	sc := make([]float64, len(plan.Inst.Units))
	for i := range sc {
		sc[i] = f
	}
	return sc
}

// allGovernors builds one governor per node.
func allGovernors(t *testing.T, plan *core.Plan, cfg Config) []*Governor {
	t.Helper()
	n := plan.Inst.Topo.N()
	govs := make([]*Governor, n)
	for j := 0; j < n; j++ {
		g, err := New(plan, j, hashing.Hasher{Key: 7}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		govs[j] = g
	}
	return govs
}

func TestBudgetMatchesManifestLoad(t *testing.T) {
	plan, _ := testPlan(t, 2)
	inst := plan.Inst
	for j := 0; j < inst.Topo.N(); j++ {
		g, err := New(plan, j, hashing.Hasher{Key: 7}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Independent computation from the published manifests: the budget
		// must equal the manifest-width load at plan volumes.
		var wantCPU, wantMem float64
		for ui, rs := range plan.Manifests[j].Ranges {
			u := inst.Units[ui]
			c := inst.Classes[u.Class]
			w := rs.Width()
			wantCPU += w * c.CPUPerPkt * u.Pkts / inst.Caps[j].CPU
			wantMem += w * c.MemPerItem * u.Items / inst.Caps[j].Mem
		}
		cpu, mem := g.Budget()
		if math.Abs(cpu-wantCPU) > 1e-9 || math.Abs(mem-wantMem) > 1e-9 {
			t.Fatalf("node %d budget (%v,%v), want (%v,%v)", j, cpu, mem, wantCPU, wantMem)
		}
	}
}

func TestNoShedWithinBudget(t *testing.T) {
	plan, _ := testPlan(t, 2)
	for _, g := range allGovernors(t, plan, Config{}) {
		rep, err := g.PlanEpoch(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Satisfied || rep.ShedWidth != 0 || len(rep.Shed) != 0 {
			t.Fatalf("node %d shed %v at plan volumes: %+v", g.Node(), rep.ShedWidth, rep)
		}
		if rep.Over() {
			t.Fatalf("node %d projects over budget at scale 1", g.Node())
		}
	}
}

func TestShedEngagesAndFitsTolerance(t *testing.T) {
	plan, _ := testPlan(t, 2)
	reg := obs.New()
	govs := allGovernors(t, plan, Config{Metrics: reg})
	scale := uniformScale(plan, 3)
	shedSomewhere := false
	for _, g := range govs {
		rep, err := g.PlanEpoch(scale)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Over() {
			continue
		}
		limCPU := rep.BudgetCPU * 1.1
		limMem := rep.BudgetMem * 1.1
		if rep.Satisfied {
			if rep.CPUAfter > limCPU+1e-9 || rep.MemAfter > limMem+1e-9 {
				t.Fatalf("node %d satisfied but load after (%v,%v) over limits (%v,%v)",
					g.Node(), rep.CPUAfter, rep.MemAfter, limCPU, limMem)
			}
		}
		for _, sr := range rep.Shed {
			if sr.Copy < 1 {
				t.Fatalf("node %d shed copy-%d range %+v — coverage floor violated", g.Node(), sr.Copy, sr)
			}
			if sr.Range.Lo < 0 || sr.Range.Hi > 1 || sr.Range.IsEmpty() {
				t.Fatalf("node %d shed malformed range %+v", g.Node(), sr)
			}
		}
		if len(rep.Shed) > 0 {
			shedSomewhere = true
		}
	}
	if !shedSomewhere {
		t.Fatal("3x overload shed nothing on any node")
	}
	// The coverage floor holds network-wide: copy 0 is intact everywhere.
	worst, avg := Coverage(plan, govs, 2000)
	if worst < 1-1e-9 {
		t.Fatalf("worst coverage %v (avg %v) after shedding — r=1 floor broken", worst, avg)
	}
	if reg.Counter("governor.sheds").Value() == 0 {
		t.Fatal("shed counter never incremented")
	}
}

func TestRestoreAfterBurst(t *testing.T) {
	plan, _ := testPlan(t, 2)
	for _, g := range allGovernors(t, plan, Config{}) {
		rep, err := g.PlanEpoch(uniformScale(plan, 3))
		if err != nil {
			t.Fatal(err)
		}
		hadShed := rep.ShedWidth > 0
		rep, err = g.PlanEpoch(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ShedWidth != 0 || g.ShedWidth() != 0 {
			t.Fatalf("node %d kept shed width %v after burst ended (had shed: %v)",
				g.Node(), rep.ShedWidth, hadShed)
		}
	}
}

func TestSustainDebouncesOneEpochBlip(t *testing.T) {
	plan, _ := testPlan(t, 2)
	burst := uniformScale(plan, 3)
	// Find nodes that actually shed under an immediate (Sustain=1) governor,
	// then check a Sustain=2 governor debounces the same burst by one epoch.
	sheds := map[int]bool{}
	for _, g := range allGovernors(t, plan, Config{}) {
		rep, err := g.PlanEpoch(burst)
		if err != nil {
			t.Fatal(err)
		}
		sheds[g.Node()] = rep.ShedWidth > 0
	}
	for _, g := range allGovernors(t, plan, Config{Sustain: 2}) {
		if !sheds[g.Node()] {
			continue
		}
		rep, err := g.PlanEpoch(burst)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ShedWidth != 0 {
			t.Fatalf("node %d shed on the first over epoch despite Sustain=2", g.Node())
		}
		rep, err = g.PlanEpoch(burst)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ShedWidth == 0 {
			t.Fatalf("node %d still not shedding on the second sustained over epoch", g.Node())
		}
		return
	}
	t.Skip("no node overloaded at 3x — instance too slack for this seed")
}

func TestClassValueOrdersShedding(t *testing.T) {
	plan, _ := testPlan(t, 2)
	// http (class 1) is cheap to drop, signature (class 0) valuable: every
	// shed range must come from http units until http is exhausted.
	cfg := Config{ClassValue: []float64{10, 1}}
	for _, g := range allGovernors(t, plan, cfg) {
		rep, err := g.PlanEpoch(uniformScale(plan, 2))
		if err != nil {
			t.Fatal(err)
		}
		seenValuable := false
		for _, sr := range rep.Shed {
			class := plan.Inst.Units[sr.Unit].Class
			if class == 0 {
				seenValuable = true
			} else if seenValuable {
				t.Fatalf("node %d shed cheap class after valuable one: %+v", g.Node(), rep.Shed)
			}
		}
	}
}

func TestShedsPredicateMatchesCovers(t *testing.T) {
	plan, ss := testPlan(t, 2)
	h := hashing.Hasher{Key: 7}
	govs := allGovernors(t, plan, Config{})
	scale := uniformScale(plan, 3)
	checked := 0
	for _, g := range govs {
		if _, err := g.PlanEpoch(scale); err != nil {
			t.Fatal(err)
		}
		if g.ShedWidth() == 0 {
			continue
		}
		for ci := range plan.Inst.Classes {
			for _, s := range ss[:500] {
				ui, ok := plan.Inst.UnitFor(ci, s)
				if !ok {
					continue
				}
				x := plan.Inst.Classes[ci].HashOf(h, s.Tuple)
				if got, want := g.Sheds(ci, s), g.Covers(ui, x); got != want {
					t.Fatalf("node %d class %d: Sheds=%v Covers=%v at x=%v", g.Node(), ci, got, want, x)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("predicate never exercised — no node shed at 3x")
	}
}

func TestDeterministicAcrossRebuilds(t *testing.T) {
	plan, _ := testPlan(t, 2)
	scales := [][]float64{uniformScale(plan, 1), uniformScale(plan, 3), uniformScale(plan, 1.5), nil}
	for j := 0; j < plan.Inst.Topo.N(); j++ {
		a, err := New(plan, j, hashing.Hasher{Key: 7}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(plan, j, hashing.Hasher{Key: 7}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range scales {
			ra, err := a.PlanEpoch(sc)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.PlanEpoch(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("node %d diverged on identical inputs:\n%+v\n%+v", j, ra, rb)
			}
			if !reflect.DeepEqual(a.ShedRanges(), b.ShedRanges()) {
				t.Fatalf("node %d shed state diverged", j)
			}
		}
	}
}

// TestFloorInteractsWithFailureAudit pins the division of labor between the
// two robustness mechanisms (satellite: r-floor x CoverageUnderFailure).
// Shedding alone keeps coverage at 1 because copy 0 survives; a node
// failure alone keeps coverage at 1 because redundancy r=2 covers it; but
// shedding consumes exactly the slack that redundancy provisioned, so the
// combination may dip — and must never dip below what the combined audit
// reports, which is what the cluster runtime budgets against.
func TestFloorInteractsWithFailureAudit(t *testing.T) {
	plan, _ := testPlan(t, 2)
	govs := allGovernors(t, plan, Config{})

	// No shed: the failure audit alone governs, and r=2 keeps it at 1 for
	// any single failed node that shares units.
	worstFail, _ := core.CoverageUnderFailure(plan, []int{0})
	if worstFail < 1-1e-9 {
		t.Fatalf("r=2 plan lost coverage under single failure: %v", worstFail)
	}

	// Extreme overload: every governor sheds everything above the floor.
	for _, g := range govs {
		if _, err := g.PlanEpoch(uniformScale(plan, 100)); err != nil {
			t.Fatal(err)
		}
	}
	worst, _ := Coverage(plan, govs, 2000)
	if worst < 1-1e-9 {
		t.Fatalf("floor broken without failures: worst %v", worst)
	}

	// Combined audit: shed + failed node. Copy 0 ranges hosted by the
	// failed node are gone and their copy >=1 backups were shed, so
	// coverage may drop — but it must equal the probe with the combined
	// predicate, never less than zero slack unaccounted.
	failed := 0
	worstBoth, avgBoth := core.ProbeCoverage(len(plan.Inst.Units), 2000, func(ui int, x float64) bool {
		for _, node := range plan.Inst.Units[ui].Nodes {
			if node == failed {
				continue
			}
			if !plan.Manifests[node].Ranges[ui].Contains(x) {
				continue
			}
			if govs[node] != nil && govs[node].Covers(ui, x) {
				continue
			}
			return true
		}
		return false
	})
	if worstBoth > worst+1e-9 {
		t.Fatalf("failure improved coverage? %v > %v", worstBoth, worst)
	}
	t.Logf("coverage: shed-only worst=1, shed+fail worst=%v avg=%v", worstBoth, avgBoth)
}

func TestConfigValidation(t *testing.T) {
	plan, _ := testPlan(t, 2)
	if _, err := New(plan, -1, hashing.Hasher{}, Config{}); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := New(plan, plan.Inst.Topo.N(), hashing.Hasher{}, Config{}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := New(plan, 0, hashing.Hasher{}, Config{ClassValue: []float64{1}}); err == nil {
		t.Fatal("short ClassValue accepted")
	}
	g, err := New(plan, 0, hashing.Hasher{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.PlanEpoch([]float64{1}); err == nil {
		t.Fatal("short scale vector accepted")
	}
}
