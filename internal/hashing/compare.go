package hashing

import (
	"encoding/binary"
	"hash/crc32"
	"hash/fnv"
	"math"
)

// The paper selects the Bob hash "recommended by prior studies" (Molina,
// Niccolini, Duffield — a comparative experimental study of hash functions
// for packet sampling). This file provides the comparison harness: the
// alternative functions that study evaluated (CRC-style and simple
// arithmetic hashes) behind a common interface, and a uniformity metric so
// the choice can be revalidated on this repository's own flow keys.

// Func is a packet-sampling hash: bytes -> [0, 1).
type Func interface {
	Name() string
	Unit(data []byte, key uint32) float64
}

// BobFunc is the lookup2 hash used throughout the system.
type BobFunc struct{}

// Name implements Func.
func (BobFunc) Name() string { return "bob" }

// Unit implements Func.
func (BobFunc) Unit(data []byte, key uint32) float64 {
	return unit(Bob(data, key))
}

// FNVFunc is FNV-1a (32-bit) with the key mixed in as a prefix.
type FNVFunc struct{}

// Name implements Func.
func (FNVFunc) Name() string { return "fnv1a" }

// Unit implements Func.
func (FNVFunc) Unit(data []byte, key uint32) float64 {
	h := fnv.New32a()
	var kb [4]byte
	binary.BigEndian.PutUint32(kb[:], key)
	h.Write(kb[:])
	h.Write(data)
	return unit(h.Sum32())
}

// CRCFunc is CRC-32 (IEEE) with the key mixed in as a prefix. The Molina
// study found CRC acceptable for sampling but weaker than Bob under
// structured (low-entropy) keys.
type CRCFunc struct{}

// Name implements Func.
func (CRCFunc) Name() string { return "crc32" }

// Unit implements Func.
func (CRCFunc) Unit(data []byte, key uint32) float64 {
	var kb [4]byte
	binary.BigEndian.PutUint32(kb[:], key)
	c := crc32.Update(0, crc32.IEEETable, kb[:])
	c = crc32.Update(c, crc32.IEEETable, data)
	return unit(c)
}

// ModuloFunc is the strawman the study warns against: sum the bytes and
// take a modulus. Structured address space collapses it badly.
type ModuloFunc struct{}

// Name implements Func.
func (ModuloFunc) Name() string { return "byte-sum-modulo" }

// Unit implements Func.
func (ModuloFunc) Unit(data []byte, key uint32) float64 {
	var s uint32 = key
	for _, b := range data {
		s += uint32(b)
	}
	const modulus = 4096
	return float64(s%modulus) / modulus
}

// AllFuncs lists the comparable hash functions, Bob first.
func AllFuncs() []Func {
	return []Func{BobFunc{}, FNVFunc{}, CRCFunc{}, ModuloFunc{}}
}

// ChiSquared measures uniformity of hash outputs over equal-width buckets:
// the chi-squared statistic of the bucket counts against the uniform
// expectation (lower is better; for a good hash it concentrates near the
// bucket count).
func ChiSquared(values []float64, buckets int) float64 {
	if buckets <= 0 || len(values) == 0 {
		return 0
	}
	counts := make([]float64, buckets)
	for _, v := range values {
		idx := int(v * float64(buckets))
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	expected := float64(len(values)) / float64(buckets)
	var chi float64
	for _, c := range counts {
		d := c - expected
		chi += d * d / expected
	}
	return chi
}

// CollisionScore estimates pairwise collision pressure at a given
// granularity g: the fraction of values sharing a cell with another value
// when the unit interval is cut into g cells. For uniform hashing it
// approaches 1-exp(-n/g) for n values.
func CollisionScore(values []float64, g int) float64 {
	if g <= 0 || len(values) == 0 {
		return 0
	}
	cells := make(map[int]int, len(values))
	for _, v := range values {
		idx := int(v * float64(g))
		if idx >= g {
			idx = g - 1
		}
		cells[idx]++
	}
	collided := 0
	for _, c := range cells {
		if c > 1 {
			collided += c
		}
	}
	return float64(collided) / float64(len(values))
}

// ExpectedCollisionScore is the uniform-hash baseline for CollisionScore.
func ExpectedCollisionScore(n, g int) float64 {
	if g <= 0 || n == 0 {
		return 0
	}
	// P(cell of a given value has another) = 1 - (1-1/g)^(n-1).
	return 1 - math.Pow(1-1/float64(g), float64(n-1))
}
