package hashing

import (
	"math"
	"testing"
)

func TestRangeClamp(t *testing.T) {
	cases := []struct {
		in, want Range
	}{
		{Range{-0.25, 0.5}, Range{0, 0.5}},
		{Range{0.5, 1.75}, Range{0.5, 1}},
		{Range{-1, 2}, Range{0, 1}},
		{Range{0.2, 0.8}, Range{0.2, 0.8}},
		{Range{1.5, 2}, Range{1, 1}}, // fully above: clamps to empty
	}
	for _, c := range cases {
		if got := c.in.Clamp(); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSubtractExactWidthArithmetic(t *testing.T) {
	rs := RangeSet{{0, 0.5}, {0.75, 1}}
	shed := RangeSet{{0.25, 0.375}}
	got := rs.Subtract(shed)
	if w := got.Width(); math.Abs(w-(rs.Width()-0.125)) > 1e-15 {
		t.Fatalf("width %v, want exactly %v", w, rs.Width()-0.125)
	}
	// The cut is interior to the first range: it splits in two.
	want := RangeSet{{0, 0.25}, {0.375, 0.5}, {0.75, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("piece %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSubtractEmptyShedIsIdentity(t *testing.T) {
	rs := RangeSet{{0.1, 0.4}}
	if got := rs.Subtract(nil); got.Width() != rs.Width() || !got.Contains(0.2) {
		t.Fatalf("nil shed changed the set: %v", got)
	}
	if got := rs.Subtract(RangeSet{{0.6, 0.6}}); got.Width() != rs.Width() {
		t.Fatalf("empty-range shed changed the width: %v", got)
	}
}

func TestSubtractFullShedLeavesNothing(t *testing.T) {
	rs := RangeSet{{0, 0.3}, {0.3, 0.7}, {0.9, 1}}
	got := rs.Subtract(RangeSet{{0, 1}})
	if len(got) != 0 || got.Width() != 0 {
		t.Fatalf("full shed left %v", got)
	}
	if got.Contains(0.5) {
		t.Fatal("empty set claims to contain a point")
	}
}

func TestSubtractDisjointShedIsNoOp(t *testing.T) {
	rs := RangeSet{{0.2, 0.4}}
	got := rs.Subtract(RangeSet{{0.5, 0.9}})
	if got.Width() != 0.2 || !got.Contains(0.3) || got.Contains(0.5) {
		t.Fatalf("disjoint shed altered the set: %v", got)
	}
}

func TestSubtractEdgeTouchingCuts(t *testing.T) {
	rs := RangeSet{{0.25, 0.75}}
	// Cut exactly aligned with Lo: only the right remainder survives, and
	// the half-open convention keeps the boundary point out.
	got := rs.Subtract(RangeSet{{0.25, 0.5}})
	if got.Contains(0.25) || got.Contains(0.49) || !got.Contains(0.5) {
		t.Fatalf("lo-aligned cut wrong: %v", got)
	}
	// Cut aligned with Hi.
	got = rs.Subtract(RangeSet{{0.5, 0.75}})
	if !got.Contains(0.49) || got.Contains(0.5) {
		t.Fatalf("hi-aligned cut wrong: %v", got)
	}
}

func TestSubtractMultipleCutsAcrossMultipleRanges(t *testing.T) {
	rs := RangeSet{{0, 0.4}, {0.6, 1}}
	shed := RangeSet{{0.1, 0.2}, {0.35, 0.7}, {0.9, 2}} // last cut overhangs 1
	got := rs.Subtract(shed)
	wantWidth := 0.1 + 0.15 + 0.2 // [0,0.1) + [0.2,0.35) + [0.7,0.9)
	if math.Abs(got.Width()-wantWidth) > 1e-12 {
		t.Fatalf("width %v, want %v (pieces %v)", got.Width(), wantWidth, got)
	}
	for _, x := range []float64{0.05, 0.25, 0.8} {
		if !got.Contains(x) {
			t.Errorf("lost %v: %v", x, got)
		}
	}
	for _, x := range []float64{0.15, 0.5, 0.65, 0.95} {
		if got.Contains(x) {
			t.Errorf("failed to shed %v: %v", x, got)
		}
	}
}

func TestSubtractDoesNotMutateReceiver(t *testing.T) {
	rs := RangeSet{{0, 1}}
	_ = rs.Subtract(RangeSet{{0.4, 0.6}})
	if len(rs) != 1 || rs[0] != (Range{0, 1}) {
		t.Fatalf("receiver mutated: %v", rs)
	}
}
