package hashing

import (
	"encoding/binary"
	"math"
	"testing"
)

// structuredKeys builds the low-entropy flow keys real networks produce:
// sequential host addresses behind a few prefixes, a handful of server
// ports — exactly the regime where weak hashes collapse.
func structuredKeys(n int) [][]byte {
	keys := make([][]byte, n)
	ports := []uint16{80, 443, 53, 25}
	for i := range keys {
		b := make([]byte, 13)
		src := 10<<24 | uint32(i%4)<<16 | uint32(i)
		dst := 10<<24 | uint32((i+1)%4)<<16 | uint32(i/2)
		binary.BigEndian.PutUint32(b[0:4], src)
		binary.BigEndian.PutUint32(b[4:8], dst)
		binary.BigEndian.PutUint16(b[8:10], uint16(1024+i%5000))
		binary.BigEndian.PutUint16(b[10:12], ports[i%len(ports)])
		b[12] = 6
		keys[i] = b
	}
	return keys
}

func TestBobBeatsStrawmanOnStructuredKeys(t *testing.T) {
	keys := structuredKeys(30000)
	const buckets = 64
	chi := map[string]float64{}
	for _, f := range AllFuncs() {
		vals := make([]float64, len(keys))
		for i, k := range keys {
			vals[i] = f.Unit(k, 7)
		}
		chi[f.Name()] = ChiSquared(vals, buckets)
	}
	// A uniform hash's chi-squared over 64 buckets concentrates near 63;
	// allow generous slack.
	for _, name := range []string{"bob", "fnv1a", "crc32"} {
		if chi[name] > 3*buckets {
			t.Errorf("%s chi-squared %v on structured keys, want < %d", name, chi[name], 3*buckets)
		}
	}
	// The byte-sum strawman must be visibly worse than Bob, reproducing
	// why the sampling literature rejects arithmetic hashes.
	if chi["byte-sum-modulo"] < 5*chi["bob"] {
		t.Errorf("strawman chi-squared %v not clearly above bob %v", chi["byte-sum-modulo"], chi["bob"])
	}
}

func TestCollisionScoreNearUniformExpectation(t *testing.T) {
	keys := structuredKeys(20000)
	g := 1 << 16
	want := ExpectedCollisionScore(len(keys), g)
	for _, f := range []Func{BobFunc{}, FNVFunc{}, CRCFunc{}} {
		vals := make([]float64, len(keys))
		for i, k := range keys {
			vals[i] = f.Unit(k, 3)
		}
		got := CollisionScore(vals, g)
		if math.Abs(got-want) > 0.1+0.5*want {
			t.Errorf("%s collision score %v, uniform expectation %v", f.Name(), got, want)
		}
	}
}

func TestCompareHelpersEdgeCases(t *testing.T) {
	if ChiSquared(nil, 8) != 0 || ChiSquared([]float64{0.5}, 0) != 0 {
		t.Fatal("degenerate chi-squared not zero")
	}
	if CollisionScore(nil, 8) != 0 || ExpectedCollisionScore(0, 8) != 0 {
		t.Fatal("degenerate collision scores not zero")
	}
	// Values at exactly 1.0 - epsilon must not index out of range.
	_ = ChiSquared([]float64{0.9999999}, 4)
	_ = CollisionScore([]float64{0.9999999}, 4)
}

func BenchmarkHashFuncs(b *testing.B) {
	keys := structuredKeys(1024)
	for _, f := range AllFuncs() {
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Unit(keys[i%len(keys)], 7)
			}
		})
	}
}
