package hashing

import (
	"math"
	"math/rand"
	"testing"
)

// randomDisjointSet builds a disjoint RangeSet by cutting [0,1) at random
// points, keeping alternate pieces, and shuffling the slice order.
func randomDisjointSet(rng *rand.Rand, cuts int) RangeSet {
	pts := make([]float64, cuts)
	for i := range pts {
		pts[i] = rng.Float64()
	}
	pts = append(pts, 0, 1)
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	var rs RangeSet
	for i := 0; i+1 < len(pts); i += 2 {
		rs = append(rs, Range{Lo: pts[i], Hi: pts[i+1]})
	}
	rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
	return rs
}

// The arena must answer Contains exactly as the RangeSet it was built
// from, across group sizes that exercise both the linear and the binary
// search paths, including the half-open boundary points themselves.
func TestArenaContainsMatchesRangeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		rs := randomDisjointSet(rng, 1+rng.Intn(24))
		var a Arena
		sp := a.Append(rs)
		probes := make([]float64, 0, 64+4*len(rs))
		for i := 0; i < 64; i++ {
			probes = append(probes, rng.Float64())
		}
		for _, r := range rs {
			probes = append(probes, r.Lo, r.Hi, math.Nextafter(r.Lo, 0), math.Nextafter(r.Hi, 0))
		}
		for _, x := range probes {
			if got, want := a.Contains(sp, x), rs.Contains(x); got != want {
				t.Fatalf("trial %d: Contains(%v) = %v, RangeSet says %v (set %v)", trial, x, got, want, rs)
			}
		}
		if got, want := a.Width(sp), rs.Width(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: Width = %v, RangeSet says %v", trial, got, want)
		}
	}
}

// Overlapping input groups must still answer membership for the union.
func TestArenaCoalescesOverlaps(t *testing.T) {
	var a Arena
	sp := a.Append(RangeSet{{0.1, 0.5}, {0.3, 0.7}, {0.7, 0.8}, {0.95, 0.9}})
	cases := []struct {
		x    float64
		want bool
	}{
		{0.05, false}, {0.1, true}, {0.45, true}, {0.6, true},
		{0.75, true}, {0.8, false}, {0.92, false},
	}
	for _, c := range cases {
		if got := a.Contains(sp, c.x); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if sp.Len() != 1 {
		t.Errorf("overlapping+touching ranges should coalesce to 1, got %d", sp.Len())
	}
}

// Spans handed out earlier must stay valid as the arena grows, and an
// empty group must answer false everywhere.
func TestArenaMultipleGroups(t *testing.T) {
	var a Arena
	sp1 := a.Append(RangeSet{{0.0, 0.25}})
	empty := a.Append(nil)
	sp2 := a.Append(RangeSet{{0.5, 0.75}})
	if !a.Contains(sp1, 0.1) || a.Contains(sp1, 0.5) {
		t.Error("sp1 membership wrong after growth")
	}
	if a.Contains(empty, 0.1) {
		t.Error("empty span contains something")
	}
	if !a.Contains(sp2, 0.6) || a.Contains(sp2, 0.1) {
		t.Error("sp2 membership wrong")
	}
}

// The query path must be allocation-free: this is the per-packet check.
func TestArenaContainsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a Arena
	sp := a.Append(randomDisjointSet(rng, 20))
	sink := false
	if n := testing.AllocsPerRun(1000, func() {
		sink = a.Contains(sp, 0.42) || sink
		sink = a.Contains(sp, 0.9142) || sink
	}); n != 0 {
		t.Fatalf("Arena.Contains allocates %v per run, want 0", n)
	}
	_ = sink
}

func BenchmarkArenaContains(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, cuts := range []int{2, 8, 32} {
		rs := randomDisjointSet(rng, cuts)
		var a Arena
		sp := a.Append(rs)
		b.Run(map[int]string{2: "tiny", 8: "small", 32: "large"}[cuts], func(b *testing.B) {
			b.ReportAllocs()
			x, hits := 0.0, 0
			for i := 0; i < b.N; i++ {
				if a.Contains(sp, x) {
					hits++
				}
				x += 0.618033988749
				if x >= 1 {
					x -= 1
				}
			}
			_ = hits
		})
	}
}
