package hashing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randTuple(rng *rand.Rand) FiveTuple {
	return FiveTuple{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Proto:   uint8(rng.Intn(256)),
	}
}

func TestBobKnownProperties(t *testing.T) {
	// Deterministic for fixed input and seed.
	d := []byte("hello, network-wide nids")
	if Bob(d, 1) != Bob(d, 1) {
		t.Fatal("Bob hash is not deterministic")
	}
	// Seed changes the output.
	if Bob(d, 1) == Bob(d, 2) {
		t.Fatal("seed has no effect")
	}
	// Input changes the output.
	if Bob([]byte("a"), 0) == Bob([]byte("b"), 0) {
		t.Fatal("single-byte collision on trivially different inputs")
	}
	// All tail lengths are exercised without panicking and differ from one
	// another with overwhelming probability.
	seen := map[uint32]bool{}
	buf := make([]byte, 0, 16)
	for n := 0; n <= 16; n++ {
		h := Bob(buf[:n], 7)
		if seen[h] {
			t.Fatalf("collision at length %d", n)
		}
		seen[h] = true
		buf = append(buf, byte(n+1))
	}
}

func TestBobUniformity(t *testing.T) {
	// Chi-squared-ish sanity: hash 40000 random tuples into 16 buckets;
	// each bucket should be within 20% of uniform.
	rng := rand.New(rand.NewSource(42))
	h := Hasher{Key: 99}
	const n, buckets = 40000, 16
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		v := h.Flow(randTuple(rng))
		if v < 0 || v >= 1 {
			t.Fatalf("hash out of unit interval: %v", v)
		}
		counts[int(v*buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.2*want {
			t.Fatalf("bucket %d has %d, want ~%v", b, c, want)
		}
	}
}

func TestSessionHashDirectionInvariant(t *testing.T) {
	h := Hasher{Key: 7}
	f := func(a, b uint32, p, q uint16, proto uint8) bool {
		ft := FiveTuple{SrcIP: a, DstIP: b, SrcPort: p, DstPort: q, Proto: proto}
		return h.Session(ft) == h.Session(ft.Reverse())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowHashDirectionSensitive(t *testing.T) {
	h := Hasher{Key: 7}
	rng := rand.New(rand.NewSource(3))
	differs := 0
	for i := 0; i < 200; i++ {
		ft := randTuple(rng)
		if ft.SrcIP == ft.DstIP && ft.SrcPort == ft.DstPort {
			continue
		}
		if h.Flow(ft) != h.Flow(ft.Reverse()) {
			differs++
		}
	}
	if differs < 190 {
		t.Fatalf("flow hash direction-insensitive too often: %d/200 differ", differs)
	}
}

func TestSourceHashGroupsBySource(t *testing.T) {
	h := Hasher{Key: 11}
	base := FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: 6}
	v := h.Source(base)
	for port := uint16(1); port < 100; port++ {
		ft := base
		ft.DstPort = port
		ft.DstIP = 0x0a0000ff + uint32(port)
		if h.Source(ft) != v {
			t.Fatal("source hash depends on non-source fields")
		}
	}
	other := base
	other.SrcIP = 0x0a000099
	if h.Source(other) == v {
		t.Fatal("distinct sources collide (astronomically unlikely)")
	}
}

func TestDestinationHashGroupsByDestination(t *testing.T) {
	h := Hasher{Key: 11}
	base := FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: 6}
	v := h.Destination(base)
	ft := base
	ft.SrcIP, ft.SrcPort = 0x0b000001, 999
	if h.Destination(ft) != v {
		t.Fatal("destination hash depends on non-destination fields")
	}
}

func TestKeyedHashChangesMapping(t *testing.T) {
	// A private key must remap flows: the same tuple lands elsewhere.
	ft := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	a := Hasher{Key: 1}.Flow(ft)
	b := Hasher{Key: 2}.Flow(ft)
	if a == b {
		t.Fatal("key has no effect on flow hash")
	}
}

func TestRangeSemantics(t *testing.T) {
	r := Range{0.25, 0.5}
	cases := []struct {
		x    float64
		want bool
	}{
		{0.24999, false}, {0.25, true}, {0.3, true}, {0.49999, true}, {0.5, false},
	}
	for _, c := range cases {
		if r.Contains(c.x) != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.x, r.Contains(c.x), c.want)
		}
	}
	if w := r.Width(); w != 0.25 {
		t.Fatalf("Width = %v, want 0.25", w)
	}
	if !(Range{0.5, 0.5}).IsEmpty() || !(Range{0.6, 0.5}).IsEmpty() {
		t.Fatal("empty/inverted ranges not detected")
	}
	if (Range{0.6, 0.5}).Width() != 0 {
		t.Fatal("inverted range has nonzero width")
	}
}

func TestRangeSet(t *testing.T) {
	rs := RangeSet{{0.9, 1.0}, {0.0, 0.1}} // wraparound allocation
	if !rs.Contains(0.95) || !rs.Contains(0.05) || rs.Contains(0.5) {
		t.Fatal("RangeSet membership wrong")
	}
	if math.Abs(rs.Width()-0.2) > 1e-12 {
		t.Fatalf("Width = %v, want 0.2", rs.Width())
	}
}

func TestHalfOpenRangesTileWithoutOverlap(t *testing.T) {
	// Adjacent ranges [0,a) [a,b) [b,1) must cover each point exactly once.
	cuts := []float64{0, 0.31, 0.64, 1}
	var ranges []Range
	for i := 0; i+1 < len(cuts); i++ {
		ranges = append(ranges, Range{cuts[i], cuts[i+1]})
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		x := rng.Float64()
		hits := 0
		for _, r := range ranges {
			if r.Contains(x) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("point %v covered %d times", x, hits)
		}
	}
}

func TestFiveTupleString(t *testing.T) {
	ft := FiveTuple{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1234, DstPort: 80, Proto: 6}
	want := "10.0.0.1:1234 -> 192.168.1.1:80/6"
	if got := ft.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func BenchmarkSessionHash(b *testing.B) {
	h := Hasher{Key: 1}
	ft := FiveTuple{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1234, DstPort: 80, Proto: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Session(ft)
	}
}

// The specialized per-packet hash paths must be bit-identical to encoding
// the tuple and running the generic Bob loop — the hash values are part of
// the coordination contract (every node must agree on who owns a flow), so
// any speedup that changes a single output bit silently breaks network-wide
// coverage.
func TestHasherMatchesGenericBob(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	generic := func(h Hasher, data []byte) float64 { return unit(Bob(data, h.Key)) }
	for trial := 0; trial < 2000; trial++ {
		h := Hasher{Key: rng.Uint32()}
		ft := randTuple(rng)
		var b13 [13]byte
		ft.encode(&b13)
		if got, want := h.Flow(ft), generic(h, b13[:]); got != want {
			t.Fatalf("Flow(%v) = %v, generic Bob says %v", ft, got, want)
		}
		ft.canonical().encode(&b13)
		if got, want := h.Session(ft), generic(h, b13[:]); got != want {
			t.Fatalf("Session(%v) = %v, generic Bob says %v", ft, got, want)
		}
		b4 := []byte{byte(ft.SrcIP >> 24), byte(ft.SrcIP >> 16), byte(ft.SrcIP >> 8), byte(ft.SrcIP)}
		if got, want := h.Source(ft), generic(h, b4); got != want {
			t.Fatalf("Source(%v) = %v, generic Bob says %v", ft, got, want)
		}
		b4 = []byte{byte(ft.DstIP >> 24), byte(ft.DstIP >> 16), byte(ft.DstIP >> 8), byte(ft.DstIP)}
		if got, want := h.Destination(ft), generic(h, b4); got != want {
			t.Fatalf("Destination(%v) = %v, generic Bob says %v", ft, got, want)
		}
	}
}
