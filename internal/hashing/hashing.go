// Package hashing implements the packet-selection hash machinery the paper
// builds its sampling manifests on: the Bob Jenkins ("Bob") hash function
// recommended for packet sampling by Molina et al. (the paper's [26]),
// canonical unidirectional and bidirectional 5-tuple keys, a keyed-hash
// mode to resist adversaries crafting traffic that evades sampling checks
// (Section 3.2's first assumption), and half-open [lo, hi) hash ranges used
// by the manifests of Figure 2.
package hashing

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// FiveTuple identifies a unidirectional flow: a sequence of packets with
// the same addresses, ports, and protocol. IPs are IPv4 in host order.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse returns the tuple for the opposite direction.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP: ft.DstIP, DstIP: ft.SrcIP,
		SrcPort: ft.DstPort, DstPort: ft.SrcPort,
		Proto: ft.Proto,
	}
}

// String renders the tuple as "a.b.c.d:p -> a.b.c.d:p/proto".
func (ft FiveTuple) String() string {
	ip := func(v uint32) string {
		return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return fmt.Sprintf("%s:%d -> %s:%d/%d", ip(ft.SrcIP), ft.SrcPort, ip(ft.DstIP), ft.DstPort, ft.Proto)
}

// canonical orders the endpoints so both directions of a session yield the
// same byte encoding (the paper's "bidirectional 5-tuple such that the
// src/dst IP are consistent in both directions"). The (IP, port) pairs are
// compared as packed 48-bit keys and swapped under a single condition —
// one compare plus conditional moves, no data-dependent branch. On random
// traffic the direction test is a coin flip, and a mispredicted branch
// here stalls the serial mix chain that consumes the result.
func (ft FiveTuple) canonical() FiveTuple {
	ks := uint64(ft.SrcIP)<<16 | uint64(ft.SrcPort)
	kd := uint64(ft.DstIP)<<16 | uint64(ft.DstPort)
	if ks > kd {
		ft.SrcIP, ft.DstIP = ft.DstIP, ft.SrcIP
		ft.SrcPort, ft.DstPort = ft.DstPort, ft.SrcPort
	}
	return ft
}

// encode writes the 13-byte wire form of the tuple.
func (ft FiveTuple) encode(b *[13]byte) {
	binary.BigEndian.PutUint32(b[0:4], ft.SrcIP)
	binary.BigEndian.PutUint32(b[4:8], ft.DstIP)
	binary.BigEndian.PutUint16(b[8:10], ft.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], ft.DstPort)
	b[12] = ft.Proto
}

// Bob computes Bob Jenkins' lookup2 hash over data with the given seed.
// This is the hash function the packet-sampling literature the paper cites
// found to have the best uniformity/cost trade-off for flow keys.
func Bob(data []byte, seed uint32) uint32 {
	var a, b, c uint32 = 0x9e3779b9, 0x9e3779b9, seed
	i := 0
	for ; i+12 <= len(data); i += 12 {
		a += binary.LittleEndian.Uint32(data[i : i+4])
		b += binary.LittleEndian.Uint32(data[i+4 : i+8])
		c += binary.LittleEndian.Uint32(data[i+8 : i+12])
		a, b, c = mix(a, b, c)
	}
	c += uint32(len(data))
	rest := data[i:]
	switch len(rest) {
	case 11:
		c += uint32(rest[10]) << 24
		fallthrough
	case 10:
		c += uint32(rest[9]) << 16
		fallthrough
	case 9:
		c += uint32(rest[8]) << 8
		fallthrough
	case 8:
		b += uint32(rest[7]) << 24
		fallthrough
	case 7:
		b += uint32(rest[6]) << 16
		fallthrough
	case 6:
		b += uint32(rest[5]) << 8
		fallthrough
	case 5:
		b += uint32(rest[4])
		fallthrough
	case 4:
		a += uint32(rest[3]) << 24
		fallthrough
	case 3:
		a += uint32(rest[2]) << 16
		fallthrough
	case 2:
		a += uint32(rest[1]) << 8
		fallthrough
	case 1:
		a += uint32(rest[0])
	}
	_, _, c = mix(a, b, c)
	return c
}

// mix is lookup2's reversible 3-word mixer.
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= b
	a -= c
	a ^= c >> 13
	b -= c
	b -= a
	b ^= a << 8
	c -= a
	c -= b
	c ^= b >> 13
	a -= b
	a -= c
	a ^= c >> 12
	b -= c
	b -= a
	b ^= a << 16
	c -= a
	c -= b
	c ^= b >> 5
	a -= b
	a -= c
	a ^= c >> 3
	b -= c
	b -= a
	b ^= a << 10
	c -= a
	c -= b
	c ^= b >> 15
	return a, b, c
}

// Hasher maps flow keys to the unit interval. The Key seeds the hash so
// operators can use a private keyed hash to prevent adversaries from
// predicting which node samples which flows.
type Hasher struct {
	Key uint32
}

// unit converts a 32-bit hash to [0, 1).
func unit(h uint32) float64 { return float64(h) / 4294967296.0 }

// The per-packet Hasher methods below are fixed-size specializations of
// Bob over the tuple's wire encoding: the encode buffer and the generic
// block loop are folded into direct word arithmetic. The outputs are
// bit-identical to encoding and calling Bob (TestHasherMatchesGenericBob
// pins this); only the constant-factor cost changes, which matters because
// these run up to four times per session on the data-plane decision path.

// bob13 is Bob over a 13-byte input given as its three little-endian block
// words plus the single tail byte. The two mix rounds are written out
// inline: mix is a 24-op serial dependency chain that the compiler does
// not inline, and at one-to-four calls per session the call overhead of
// two outlined rounds is measurable on the decision path.
func bob13(w0, w1, w2 uint32, tail uint8, seed uint32) uint32 {
	a, b, c := 0x9e3779b9+w0, 0x9e3779b9+w1, seed+w2
	a -= b
	a -= c
	a ^= c >> 13
	b -= c
	b -= a
	b ^= a << 8
	c -= a
	c -= b
	c ^= b >> 13
	a -= b
	a -= c
	a ^= c >> 12
	b -= c
	b -= a
	b ^= a << 16
	c -= a
	c -= b
	c ^= b >> 5
	a -= b
	a -= c
	a ^= c >> 3
	b -= c
	b -= a
	b ^= a << 10
	c -= a
	c -= b
	c ^= b >> 15
	c += 13
	a += uint32(tail)
	a -= b
	a -= c
	a ^= c >> 13
	b -= c
	b -= a
	b ^= a << 8
	c -= a
	c -= b
	c ^= b >> 13
	a -= b
	a -= c
	a ^= c >> 12
	b -= c
	b -= a
	b ^= a << 16
	c -= a
	c -= b
	c ^= b >> 5
	a -= b
	a -= c
	a ^= c >> 3
	b -= c
	b -= a
	b ^= a << 10
	c -= a
	c -= b
	c ^= b >> 15
	return c
}

// bob4 is Bob over a 4-byte big-endian input.
func bob4(v, seed uint32) uint32 {
	// No full block: c absorbs the length, then the four tail bytes land in
	// a as the byte-swapped word. Single mix round, written out for the
	// same reason as bob13.
	a, b, c := 0x9e3779b9+bits.ReverseBytes32(v), uint32(0x9e3779b9), seed+4
	a -= b
	a -= c
	a ^= c >> 13
	b -= c
	b -= a
	b ^= a << 8
	c -= a
	c -= b
	c ^= b >> 13
	a -= b
	a -= c
	a ^= c >> 12
	b -= c
	b -= a
	b ^= a << 16
	c -= a
	c -= b
	c ^= b >> 5
	a -= b
	a -= c
	a ^= c >> 3
	b -= c
	b -= a
	b ^= a << 10
	c -= a
	c -= b
	c ^= b >> 15
	return c
}

// portsWord is the little-endian third block word of the 13-byte encoding:
// the two big-endian ports byte-swapped and packed.
func portsWord(sp, dp uint16) uint32 {
	return uint32(bits.ReverseBytes16(sp)) | uint32(bits.ReverseBytes16(dp))<<16
}

// Flow hashes the unidirectional 5-tuple to [0, 1). Use for per-flow
// analyses where direction matters.
func (h Hasher) Flow(ft FiveTuple) float64 {
	return unit(bob13(bits.ReverseBytes32(ft.SrcIP), bits.ReverseBytes32(ft.DstIP),
		portsWord(ft.SrcPort, ft.DstPort), ft.Proto, h.Key))
}

// Session hashes the bidirectional (canonical) 5-tuple to [0, 1): both
// directions of a connection land at the same point, so session-based
// analyses see both halves at the same node. The canonical ordering is
// done on two packed (IP<<16 | port) words swapped in registers — the
// same ordering as canonical(), but without shuffling the struct through
// memory, and compiled branch-free so the coin-flip direction test never
// mispredicts into the serial mix chain.
func (h Hasher) Session(ft FiveTuple) float64 {
	ks := uint64(ft.SrcIP)<<16 | uint64(ft.SrcPort)
	kd := uint64(ft.DstIP)<<16 | uint64(ft.DstPort)
	if ks > kd {
		ks, kd = kd, ks
	}
	return unit(bob13(bits.ReverseBytes32(uint32(ks>>16)), bits.ReverseBytes32(uint32(kd>>16)),
		portsWord(uint16(ks), uint16(kd)), ft.Proto, h.Key))
}

// Source hashes only the source address to [0, 1). Per-source analyses
// (e.g. scan detection) use this so all flows from one host map together.
func (h Hasher) Source(ft FiveTuple) float64 {
	return unit(bob4(ft.SrcIP, h.Key))
}

// Destination hashes only the destination address to [0, 1). Per-destination
// analyses (e.g. SYN-flood victim counting) use this.
func (h Hasher) Destination(ft FiveTuple) float64 {
	return unit(bob4(ft.DstIP, h.Key))
}

// Range is a half-open interval [Lo, Hi) within the unit hash space.
// Manifests assign each node a set of ranges per coordination unit; the
// half-open convention makes adjacent ranges tile without double coverage.
type Range struct {
	Lo, Hi float64
}

// Contains reports whether x falls inside the range.
func (r Range) Contains(x float64) bool { return x >= r.Lo && x < r.Hi }

// Width returns the measure of the range (0 for empty or inverted ranges).
func (r Range) Width() float64 {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// IsEmpty reports whether the range covers nothing.
func (r Range) IsEmpty() bool { return r.Hi <= r.Lo }

// String renders the range as "[lo, hi)".
func (r Range) String() string { return fmt.Sprintf("[%.6f, %.6f)", r.Lo, r.Hi) }

// RangeSet is a collection of disjoint ranges assigned to one node for one
// coordination unit. With the paper's Section 2.5 redundancy extension a
// node's allocation can wrap around 1.0, producing two ranges.
type RangeSet []Range

// Contains reports whether x falls in any member range.
func (rs RangeSet) Contains(x float64) bool {
	for _, r := range rs {
		if r.Contains(x) {
			return true
		}
	}
	return false
}

// Width sums the member widths.
func (rs RangeSet) Width() float64 {
	var w float64
	for _, r := range rs {
		w += r.Width()
	}
	return w
}

// Clamp returns the range intersected with [0, 1), the only part of hash
// space a manifest can ever match. Out-of-range endpoints come from shed
// arithmetic done in cumulative coordinates; clamping keeps them honest.
func (r Range) Clamp() Range {
	if r.Lo < 0 {
		r.Lo = 0
	} else if r.Lo > 1 {
		r.Lo = 1
	}
	if r.Hi > 1 {
		r.Hi = 1
	} else if r.Hi < 0 {
		r.Hi = 0
	}
	return r
}

// Subtract returns rs minus the given ranges, as a set of disjoint
// half-open pieces in the order induced by rs. The load governor uses this
// to carve shed ranges out of a node's manifest exactly — widths subtract
// algebraically, with no probing error.
func (rs RangeSet) Subtract(shed RangeSet) RangeSet {
	if len(shed) == 0 || len(rs) == 0 {
		return rs
	}
	out := make(RangeSet, 0, len(rs))
	for _, r := range rs {
		pieces := RangeSet{r}
		for _, cut := range shed {
			if cut.IsEmpty() {
				continue
			}
			var next RangeSet
			for _, p := range pieces {
				// Left remainder [p.Lo, cut.Lo) and right remainder
				// [cut.Hi, p.Hi); empty pieces drop out.
				if left := (Range{p.Lo, math.Min(p.Hi, cut.Lo)}); !left.IsEmpty() {
					next = append(next, left)
				}
				if right := (Range{math.Max(p.Lo, cut.Hi), p.Hi}); !right.IsEmpty() {
					next = append(next, right)
				}
			}
			pieces = next
			if len(pieces) == 0 {
				break
			}
		}
		out = append(out, pieces...)
	}
	return out
}
