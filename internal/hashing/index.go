package hashing

import "sort"

// This file implements the flattened interval index backing the
// per-packet data plane. A manifest's range lookups used to walk small
// heap-allocated RangeSet slices behind a map; at millions of decisions
// per second the pointer chase and the map's key hashing dominate the
// check itself. The Arena instead stores every range of every
// (class, unit) group in one flat float64 slice of interleaved (lo, hi)
// pairs, grouped contiguously and sorted by Lo within each group, so a
// membership query is a bounds lookup plus a branch-free scan or binary
// search over cache-resident data — each probed range sits in one cache
// line, not one per bound — and building it allocates only the backing
// slice, never per-lookup.

// Span addresses one group's ranges inside an Arena: the half-open
// range-index interval [Off, End).
type Span struct {
	Off, End int32
}

// Len reports the number of ranges in the span.
func (sp Span) Len() int { return int(sp.End - sp.Off) }

// Arena is a flattened store of many sorted range groups. The zero value
// is ready to use. Append-only: spans handed out stay valid as the
// backing slice grows.
type Arena struct {
	// bounds interleaves the bounds of range i as (bounds[2i], bounds[2i+1]).
	bounds []float64
}

// Append adds a group of ranges to the arena and returns its span. Empty
// and inverted ranges are dropped; the kept ranges are sorted by Lo so
// Contains can binary-search. Ranges in one group are expected to be
// disjoint (every producer in this repository — plan manifests, shed
// subtraction — guarantees it); overlapping ranges still answer Contains
// correctly only via the group's coalesced form, so Append merges any
// overlapping ranges it is given. Width bookkeeping that must preserve
// double-counting therefore happens before Append (see control.NewDecider).
func (a *Arena) Append(rs RangeSet) Span {
	off := int32(len(a.bounds) / 2)
	tmp := make(RangeSet, 0, len(rs))
	for _, r := range rs {
		if !r.IsEmpty() {
			tmp = append(tmp, r)
		}
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].Lo < tmp[j].Lo })
	for _, r := range tmp {
		if n := len(a.bounds); n > int(off)*2 && r.Lo <= a.bounds[n-1] {
			// Overlapping or touching the previous range: extend it. For
			// disjoint input this never fires; for overlapping input it
			// keeps binary search sound.
			if r.Hi > a.bounds[n-1] {
				a.bounds[n-1] = r.Hi
			}
			continue
		}
		a.bounds = append(a.bounds, r.Lo, r.Hi)
	}
	return Span{Off: off, End: int32(len(a.bounds) / 2)}
}

// Contains reports whether x falls in any range of the span. Ranges are
// half-open [lo, hi), matching Range.Contains.
func (a *Arena) Contains(sp Span, x float64) bool {
	lo, hi := int(sp.Off), int(sp.End)
	n := hi - lo
	b := a.bounds
	if n <= 4 {
		// Tiny groups (the common case: one or two ranges per unit) are
		// faster to scan than to bisect.
		for i := lo; i < hi; i++ {
			if x >= b[2*i] && x < b[2*i+1] {
				return true
			}
		}
		return false
	}
	// Binary search: the last range with Lo <= x is the only candidate,
	// because ranges within a group are disjoint and sorted.
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[2*mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	return i >= int(sp.Off) && x < b[2*i+1]
}

// Width sums the widths of the span's ranges in storage order — a fixed
// order for a given build, independent of input permutation once the
// group has been sorted by Append.
func (a *Arena) Width(sp Span) float64 {
	var w float64
	for i := sp.Off; i < sp.End; i++ {
		if d := a.bounds[2*i+1] - a.bounds[2*i]; d > 0 {
			w += d
		}
	}
	return w
}

// Ranges reconstructs the span's ranges (for audits and tests; not a hot
// path).
func (a *Arena) Ranges(sp Span) RangeSet {
	out := make(RangeSet, 0, sp.Len())
	for i := sp.Off; i < sp.End; i++ {
		out = append(out, Range{Lo: a.bounds[2*i], Hi: a.bounds[2*i+1]})
	}
	return out
}
