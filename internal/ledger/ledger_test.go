package ledger

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// buildChain commits a small, fixed sequence of records (with inline and
// off-chain items) against the given seed and returns the ledger.
func buildChain(t *testing.T, seed int64, store Store) *Ledger {
	t.Helper()
	l := New(Options{Seed: seed, Store: store})
	b := l.Begin(RecPublish, 1)
	b.Blob(ItemManifest, "node/0", []byte(`{"node":0,"ranges":[[0,0.5]]}`), nil)
	b.Blob(ItemManifest, "node/1", []byte(`{"node":1,"ranges":[[0.5,1]]}`), nil)
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	l.SetRun(1)
	b = l.Begin(RecEpoch, 1)
	var e Enc
	e.F64(0.97)
	e.F64(0.99)
	data, err := e.Finish()
	b.Item(ItemVerdict, "coverage", data, err)
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	b = l.Begin(RecShed, 2)
	b.Item(ItemShed, "node/1", []byte(`[{"class":0,"unit":[1,2]}]`), nil)
	b.Blob(ItemManifest, "node/0", []byte(`{"node":0,"ranges":[[0,0.5]]}`), nil) // dedups
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestChainDeterministicAcrossProcessesShape(t *testing.T) {
	a := buildChain(t, 42, NewMemStore())
	b := buildChain(t, 42, NewMemStore())
	if !bytes.Equal(a.Chain(), b.Chain()) {
		t.Fatal("same seed and commit sequence produced different chains")
	}
	if a.HeadHex() != b.HeadHex() {
		t.Fatal("same seed produced different heads")
	}
	c := buildChain(t, 43, NewMemStore())
	if a.HeadHex() == c.HeadHex() {
		t.Fatal("different seeds produced the same head")
	}
}

func TestVerifyChainAcceptsValid(t *testing.T) {
	store := NewMemStore()
	l := buildChain(t, 7, store)
	sum, err := VerifyChain(l.Chain(), VerifyOptions{
		Head: l.HeadHex(), GenesisPrev: GenesisHex(7), Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 3 || sum.Blobs != 3 || sum.Items != 5 {
		t.Fatalf("summary = %+v, want 3 records / 3 blob refs / 5 items", sum)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d blobs, want 2 (identical manifest deduplicated)", store.Len())
	}
	if sum.Head != l.HeadHex() {
		t.Fatalf("summary head %s != ledger head %s", sum.Head, l.HeadHex())
	}
	// Wrong anchors must fail.
	if _, err := VerifyChain(l.Chain(), VerifyOptions{Head: GenesisHex(7), Store: store}); err == nil {
		t.Fatal("wrong pinned head accepted")
	}
	if _, err := VerifyChain(l.Chain(), VerifyOptions{GenesisPrev: GenesisHex(8), Store: store}); err == nil {
		t.Fatal("wrong genesis accepted")
	}
}

// The core tamper guarantee: flipping any single byte anywhere — any
// chain line or any stored blob — must fail verification against the
// pinned head.
func TestVerifyDetectsEveryByteFlip(t *testing.T) {
	store := NewMemStore()
	l := buildChain(t, 11, store)
	chain := l.Chain()
	head := l.HeadHex()
	opts := func(s Store) VerifyOptions {
		return VerifyOptions{Head: head, GenesisPrev: GenesisHex(11), Store: s}
	}
	if _, err := VerifyChain(chain, opts(store)); err != nil {
		t.Fatalf("pristine chain rejected: %v", err)
	}
	for i := range chain {
		mut := append([]byte(nil), chain...)
		mut[i] ^= 0x40
		if _, err := VerifyChain(mut, opts(store)); err == nil {
			t.Fatalf("byte flip at chain offset %d went undetected", i)
		}
	}
	for _, ref := range store.Digests() {
		blob, err := store.Get(ref)
		if err != nil {
			t.Fatal(err)
		}
		for i := range blob {
			tampered := NewMemStore()
			for _, r := range store.Digests() {
				b, _ := store.Get(r)
				if r == ref {
					b[i] ^= 0x40
				}
				tampered.m[r] = b // bypass Put: file tampered bytes under the old ref
			}
			if _, err := VerifyChain(chain, opts(tampered)); err == nil {
				t.Fatalf("byte flip at offset %d of blob %s went undetected", i, ref)
			}
		}
	}
	// Truncating the chain must also fail against the pinned head.
	lines := bytes.SplitAfter(chain, []byte("\n"))
	if _, err := VerifyChain(bytes.Join(lines[:2], nil), opts(store)); err == nil {
		t.Fatal("truncated chain accepted")
	}
}

func TestEncRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var e Enc
		e.U64(1)
		e.F64(v)
		e.Str("after") // encoding continues but stays poisoned
		if _, err := e.Finish(); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("F64(%v): Finish err = %v, want ErrNonFinite", v, err)
		}
	}
	var e Enc
	e.F64(0.25)
	if _, err := e.Finish(); err != nil {
		t.Fatalf("finite float rejected: %v", err)
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U64(77)
	e.I64(-5)
	e.Bool(true)
	e.F64(0.125)
	e.Str("hello")
	e.Bytes([]byte{1, 2, 3})
	e.Ints([]int{4, -6, 8})
	e.Strs([]string{"a", "bb"})
	e.U64s([]uint64{9, 10})
	b, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDec(b)
	if d.U64() != 77 || d.I64() != -5 || !d.Bool() || d.F64() != 0.125 {
		t.Fatal("scalar round trip mismatch")
	}
	if d.Str() != "hello" || !bytes.Equal(d.Bytes(), []byte{1, 2, 3}) {
		t.Fatal("string/bytes round trip mismatch")
	}
	ints := d.Ints()
	if len(ints) != 3 || ints[0] != 4 || ints[1] != -6 || ints[2] != 8 {
		t.Fatalf("ints round trip mismatch: %v", ints)
	}
	strs := d.Strs()
	if len(strs) != 2 || strs[0] != "a" || strs[1] != "bb" {
		t.Fatalf("strs round trip mismatch: %v", strs)
	}
	u := d.U64s()
	if len(u) != 2 || u[0] != 9 || u[1] != 10 {
		t.Fatalf("u64s round trip mismatch: %v", u)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if err := NewDec(b[:len(b)-1]).Err(); err != nil {
		t.Fatal("fresh decoder should have no error yet")
	}
	short := NewDec(b[:3])
	short.U64()
	if short.Err() == nil {
		t.Fatal("truncated decode not detected")
	}
}

func TestBatchErrorPoisonsLedger(t *testing.T) {
	l := New(Options{Seed: 1})
	b := l.Begin(RecEpoch, 1)
	var e Enc
	e.F64(math.NaN())
	data, err := e.Finish()
	b.Item(ItemVerdict, "coverage", data, err)
	if _, cerr := b.Commit(); !errors.Is(cerr, ErrNonFinite) {
		t.Fatalf("Commit err = %v, want ErrNonFinite", cerr)
	}
	if !errors.Is(l.Err(), ErrNonFinite) {
		t.Fatalf("Ledger.Err = %v, want ErrNonFinite", l.Err())
	}
	if l.Len() != 0 {
		t.Fatal("poisoned batch was sealed")
	}
}

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	l.SetRun(3)
	if l.HeadHex() != "" || l.Len() != 0 || l.Err() != nil || l.Chain() != nil || l.Records() != nil {
		t.Fatal("nil ledger accessors not zero")
	}
	b := l.Begin(RecEpoch, 1)
	b.Item(ItemVerdict, "x", []byte("y"), nil)
	b.Blob(ItemTrace, "z", []byte("w"), nil)
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	c, ns, bb := l.Stats()
	if c != 0 || ns != 0 || bb != 0 {
		t.Fatal("nil ledger stats not zero")
	}
}

func TestRecordProofAndRunStamp(t *testing.T) {
	store := NewMemStore()
	l := buildChain(t, 9, store)
	recs := l.Records()
	if recs[0].Run != 0 || recs[1].Run != 1 || recs[2].Run != 1 {
		t.Fatalf("run stamps = %d,%d,%d, want 0,1,1", recs[0].Run, recs[1].Run, recs[2].Run)
	}
	rec := recs[0]
	for i := range rec.Items {
		p, err := RecordProof(rec, i)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyItem(rec, i, p) {
			t.Fatalf("item %d proof does not verify", i)
		}
		other := (i + 1) % len(rec.Items)
		if VerifyItem(rec, other, p) {
			t.Fatal("proof verified against the wrong item")
		}
	}
	if _, err := RecordProof(rec, len(rec.Items)); err == nil {
		t.Fatal("out-of-range proof succeeded")
	}
}

func TestDirStore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Put([]byte("blob-content"))
	if err != nil {
		t.Fatal(err)
	}
	if ref != Sum([]byte("blob-content")).Hex() {
		t.Fatal("ref is not the content digest")
	}
	if ref2, err := s.Put([]byte("blob-content")); err != nil || ref2 != ref {
		t.Fatalf("re-put: %s, %v", ref2, err)
	}
	got, err := s.Get(ref)
	if err != nil || !bytes.Equal(got, []byte("blob-content")) {
		t.Fatalf("get: %q, %v", got, err)
	}
	if _, err := s.Get(Sum([]byte("missing")).Hex()); err == nil {
		t.Fatal("missing blob found")
	}
	if _, err := s.Get("nothex"); err == nil {
		t.Fatal("malformed ref accepted")
	}
	if _, err := os.Stat(filepath.Join(dir, ref[:2], ref)); err != nil {
		t.Fatalf("blob not at content address: %v", err)
	}
}

// A ledger streaming to a sink writes exactly the bytes Chain() holds.
func TestSinkMatchesChain(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Seed: 3, Sink: &buf})
	b := l.Begin(RecPublish, 1)
	b.Item(ItemShed, "node/0", []byte("x"), nil)
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), l.Chain()) {
		t.Fatal("sink bytes differ from Chain()")
	}
}
