package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Digest is a SHA-256 digest.
type Digest [32]byte

// Hex renders the digest as 64 lowercase hex characters.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// Sum hashes raw bytes.
func Sum(b []byte) Digest { return Digest(sha256.Sum256(b)) }

// ParseDigest parses a 64-character hex digest.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	if len(s) != 64 {
		return d, fmt.Errorf("ledger: digest %q: want 64 hex chars, got %d", s, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return d, fmt.Errorf("ledger: digest %q: %w", s, err)
	}
	copy(d[:], b)
	return d, nil
}

// Domain-separation prefixes (RFC 6962 style): a leaf hash can never
// collide with an interior node hash, so a forged "leaf" that is really
// a subtree root does not verify.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

func leafHash(data []byte) Digest {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var d Digest
	h.Sum(d[:0])
	return d
}

func nodeHash(l, r Digest) Digest {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// emptyRoot is the defined root of a zero-item batch.
var emptyRoot = Sum([]byte("nwdeploy-ledger:empty"))

// splitPoint returns the largest power of two strictly less than n
// (n >= 2) — the RFC 6962 tree split.
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

func subRoot(leaves []Digest) Digest {
	switch len(leaves) {
	case 0:
		return emptyRoot
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(subRoot(leaves[:k]), subRoot(leaves[k:]))
}

// MerkleBatcher accumulates items into an RFC 6962-shaped Merkle tree
// and answers per-item inclusion proofs. The zero value is an empty
// batch; Reset makes it reusable across records without reallocating.
type MerkleBatcher struct {
	leaves []Digest
}

// Add hashes one item's canonical bytes into the batch and returns its
// leaf index.
func (m *MerkleBatcher) Add(data []byte) int {
	m.leaves = append(m.leaves, leafHash(data))
	return len(m.leaves) - 1
}

// Len returns the number of batched items.
func (m *MerkleBatcher) Len() int { return len(m.leaves) }

// Reset empties the batch, retaining capacity.
func (m *MerkleBatcher) Reset() { m.leaves = m.leaves[:0] }

// Root computes the batch's Merkle root (emptyRoot for no items, the
// leaf hash itself for one).
func (m *MerkleBatcher) Root() Digest { return subRoot(m.leaves) }

// Proof is a Merkle audit path for one leaf: the sibling subtree roots
// from the leaf to the root, leaf-first. Together with the leaf's
// canonical bytes it reproduces the root and nothing else — ~32 bytes
// per tree level, independent of the other items' sizes.
type Proof struct {
	// Index is the proven leaf's position; Leaves is the batch size the
	// proof was built against (the path shape depends on both).
	Index  int      `json:"index"`
	Leaves int      `json:"leaves"`
	Path   []string `json:"path,omitempty"`
}

// Proof returns the inclusion proof for leaf i.
func (m *MerkleBatcher) Proof(i int) (Proof, error) {
	if i < 0 || i >= len(m.leaves) {
		return Proof{}, fmt.Errorf("ledger: proof index %d out of range [0,%d)", i, len(m.leaves))
	}
	path := auditPath(m.leaves, i)
	p := Proof{Index: i, Leaves: len(m.leaves), Path: make([]string, len(path))}
	for j, d := range path {
		p.Path[j] = d.Hex()
	}
	return p, nil
}

func auditPath(leaves []Digest, i int) []Digest {
	if len(leaves) <= 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if i < k {
		return append(auditPath(leaves[:k], i), subRoot(leaves[k:]))
	}
	return append(auditPath(leaves[k:], i-k), subRoot(leaves[:k]))
}

// VerifyProof checks that data's leaf, walked up the audit path, lands
// on root (a 64-char hex digest). It is the offline half of the batch:
// a verifier needs only the item bytes, the proof, and the committed
// root.
func VerifyProof(data []byte, p Proof, rootHex string) bool {
	want, err := ParseDigest(rootHex)
	if err != nil {
		return false
	}
	got, ok := rootFromPath(leafHash(data), p.Index, p.Leaves, p.Path)
	return ok && got == want
}

func rootFromPath(leaf Digest, i, n int, path []string) (Digest, bool) {
	if i < 0 || n < 1 || i >= n {
		return Digest{}, false
	}
	if n == 1 {
		if len(path) != 0 {
			return Digest{}, false
		}
		return leaf, true
	}
	if len(path) == 0 {
		return Digest{}, false
	}
	sib, err := ParseDigest(path[len(path)-1])
	if err != nil {
		return Digest{}, false
	}
	k := splitPoint(n)
	if i < k {
		sub, ok := rootFromPath(leaf, i, k, path[:len(path)-1])
		if !ok {
			return Digest{}, false
		}
		return nodeHash(sub, sib), true
	}
	sub, ok := rootFromPath(leaf, i-k, n-k, path[:len(path)-1])
	if !ok {
		return Digest{}, false
	}
	return nodeHash(sib, sub), true
}
