package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is content-addressed blob storage: Put hashes the bytes and
// files them under their own SHA-256 hex digest, deduplicating identical
// content (unchanged manifests across epochs cost one blob, not one per
// epoch). Get returns the bytes for a digest. Implementations must store
// content verbatim — the verifier re-hashes every referenced blob.
type Store interface {
	Put(data []byte) (string, error)
	Get(hexDigest string) ([]byte, error)
}

// MemStore is an in-memory Store for tests and benches.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put files a copy of data under its digest.
func (s *MemStore) Put(data []byte) (string, error) {
	ref := Sum(data).Hex()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[ref]; !ok {
		s.m[ref] = append([]byte(nil), data...)
	}
	return ref, nil
}

// Get returns a copy of the blob for a digest.
func (s *MemStore) Get(hexDigest string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[hexDigest]
	if !ok {
		return nil, fmt.Errorf("ledger: blob %s not found", hexDigest)
	}
	return append([]byte(nil), b...), nil
}

// Len returns the number of distinct blobs stored.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Digests returns the stored digests in unspecified order.
func (s *MemStore) Digests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for d := range s.m {
		out = append(out, d)
	}
	return out
}

// DirStore files blobs on disk under dir as <hex[:2]>/<hex> — the
// objects/ directory of an on-disk ledger.
type DirStore struct {
	dir string
}

// NewDirStore creates (if needed) and wraps an objects directory.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: store dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(ref string) string {
	return filepath.Join(s.dir, ref[:2], ref)
}

// Put writes the blob to its content address, skipping the write when a
// blob with that digest already exists.
func (s *DirStore) Put(data []byte) (string, error) {
	ref := Sum(data).Hex()
	p := s.path(ref)
	if _, err := os.Stat(p); err == nil {
		return ref, nil
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return "", fmt.Errorf("ledger: store put: %w", err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return "", fmt.Errorf("ledger: store put: %w", err)
	}
	return ref, nil
}

// Get reads the blob at a content address.
func (s *DirStore) Get(hexDigest string) ([]byte, error) {
	if len(hexDigest) != 64 {
		return nil, fmt.Errorf("ledger: blob ref %q: want 64 hex chars", hexDigest)
	}
	b, err := os.ReadFile(s.path(hexDigest))
	if err != nil {
		return nil, fmt.Errorf("ledger: blob %s: %w", hexDigest, err)
	}
	return b, nil
}
