// Package ledger is the deployment's tamper-evident audit log: a
// hash-chained sequence of Merkle-committed records proving, after the
// fact, which node was responsible for which hash range at every epoch
// and that shed decisions never breached the coverage floor.
//
// Each Record batches a commit's items (canonical manifest encodings,
// shed decisions, coverage verdicts, governor attestations, hierarchy
// region assignments) under a Merkle root and chains to the previous
// record by the SHA-256 digest of its raw JSONL line. Bulk payloads are
// stored off-chain in a content-addressed Store and referenced on-chain
// by digest, so the chain itself stays small while every referenced byte
// remains covered by the head digest.
//
// Like internal/trace, the ledger is deterministic from the run seed:
// record IDs derive from (seed, sequence) via parallel.SplitSeed, records
// contain only logical quantities (never wall-clock time), and commits
// happen on the serial epoch loop — so two processes running the same
// seeded scenario produce byte-identical chains. The chain head is the
// run's single trust anchor: externally pin it (the HEAD file, a trace
// dump header, a log line) and any single-byte mutation anywhere in the
// history — chain or off-chain blob — becomes detectable offline by
// cmd/auditcheck.
//
// A nil *Ledger is a no-op everywhere, mirroring the nil-registry and
// nil-tracer conventions: instrumented code calls it unconditionally, and
// runs without a ledger behave identically to runs with one (the
// non-interference contract, tested in internal/cluster).
package ledger

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"nwdeploy/internal/parallel"
)

// Record kinds. The verifier rejects chains containing any other kind.
const (
	// RecPublish commits the full post-publish manifest set after a
	// Controller.UpdatePlan (one off-chain manifest blob per node).
	RecPublish = "publish"
	// RecShed commits the post-shed manifest set plus the inline shed
	// decisions after a Controller.PublishShed.
	RecShed = "shed"
	// RecEpoch commits a runtime epoch's coverage verdict (and, under the
	// governor, per-node floor attestations).
	RecEpoch = "epoch"
	// RecRegions commits a hierarchy's region-to-nodes partition at a
	// lockstep publish.
	RecRegions = "regions"
	// RecTrace commits a flight-recorder JSONL dump as an off-chain blob.
	RecTrace = "trace"
)

// Item kinds within records.
const (
	ItemManifest = "manifest" // off-chain canonical manifest (blob ref)
	ItemShed     = "shed"     // inline canonical shed assignment set
	ItemVerdict  = "verdict"  // inline coverage/SLO verdict (canonical binary)
	ItemAttest   = "attest"   // inline governor floor attestation
	ItemRegion   = "region"   // inline region member list
	ItemTrace    = "trace"    // off-chain trace JSONL dump (blob ref)
)

// KnownRecordKinds returns the closed set of valid Record.Kind values.
func KnownRecordKinds() map[string]bool {
	return map[string]bool{
		RecPublish: true, RecShed: true, RecEpoch: true,
		RecRegions: true, RecTrace: true,
	}
}

// ItemRef is one committed item: either inline (Data) or off-chain (Ref,
// the SHA-256 hex of the blob in the content-addressed store). Exactly
// one of Data/Ref is set. The Merkle leaf covers kind, key, inline data,
// and ref, so an off-chain blob is bound to the chain through its digest.
type ItemRef struct {
	Kind string `json:"kind"`
	Key  string `json:"key"`
	Data []byte `json:"data,omitempty"`
	Ref  string `json:"ref,omitempty"`
}

// LeafBytes is the canonical Merkle-leaf encoding of an item. It never
// fails: items carry opaque bytes, not floats.
func LeafBytes(it ItemRef) []byte {
	var e Enc
	e.Str(it.Kind)
	e.Str(it.Key)
	e.Bytes(it.Data)
	e.Str(it.Ref)
	b, _ := e.Finish()
	return b
}

// Record is one sealed chain entry. Its digest — the SHA-256 of its raw
// JSONL line — is what the next record's Prev and the chain head commit
// to, so every byte of the line (including Seq, ID, and Run) is covered.
type Record struct {
	// Seq is the record's position in the chain, from 0.
	Seq int `json:"seq"`
	// Kind is one of the Rec* constants.
	Kind string `json:"kind"`
	// Epoch is the controller configuration generation at commit time.
	Epoch uint64 `json:"epoch"`
	// Run is the runtime (chaos/overload) epoch at commit time; 0 marks
	// setup commits before the first epoch.
	Run int `json:"run,omitempty"`
	// ID is the seed-derived record identity: hex of
	// parallel.SplitSeed(seed, Seq), like internal/trace IDs.
	ID string `json:"id"`
	// Prev is the hex digest of the previous record's line; the first
	// record chains to the seed-derived genesis digest (GenesisHex).
	Prev string `json:"prev"`
	// Root is the Merkle root over Items (emptyRoot for none).
	Root string `json:"root"`
	Items []ItemRef `json:"items,omitempty"`
}

// Options configures a Ledger.
type Options struct {
	// Seed derives record IDs and the genesis digest. Same seed and same
	// commit sequence mean a byte-identical chain.
	Seed int64
	// Store holds off-chain blobs (nil selects a fresh in-memory store).
	Store Store
	// Sink, when non-nil, receives each sealed record line (with trailing
	// newline) as it is committed — the streaming chain.jsonl writer.
	Sink io.Writer
}

// Ledger is an append-only, hash-chained record log. All methods are
// safe on a nil receiver (no-ops returning zero values), so callers
// never guard their instrumentation.
type Ledger struct {
	mu    sync.Mutex
	seed  int64
	store Store
	sink  io.Writer
	run   int
	recs  []Record
	chain []byte // concatenated sealed lines, each newline-terminated
	head  Digest
	err   error

	commits  int
	commitNS int64
	blobIn   int64
}

// New builds an empty ledger whose head is the seed's genesis digest.
func New(o Options) *Ledger {
	st := o.Store
	if st == nil {
		st = NewMemStore()
	}
	return &Ledger{seed: o.Seed, store: st, sink: o.Sink, head: genesisDigest(o.Seed)}
}

func genesisDigest(seed int64) Digest {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	return Sum(append([]byte("nwdeploy-ledger:genesis:"), b[:]...))
}

// GenesisHex returns the Prev digest of a seed's first record — what an
// offline verifier given the run seed checks the chain starts from.
func GenesisHex(seed int64) string { return genesisDigest(seed).Hex() }

// SetRun stamps subsequent records with the current runtime epoch.
func (l *Ledger) SetRun(epoch int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.run = epoch
	l.mu.Unlock()
}

// Head returns the current chain head digest (genesis when empty).
func (l *Ledger) Head() Digest {
	if l == nil {
		return Digest{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// HeadHex returns the chain head as hex, or "" on a nil ledger. It is
// the shape trace.Tracer.SetChainHead expects.
func (l *Ledger) HeadHex() string {
	if l == nil {
		return ""
	}
	return l.Head().Hex()
}

// Len returns the number of sealed records.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Records returns a copy of the sealed records.
func (l *Ledger) Records() []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.recs...)
}

// Chain returns the raw chain bytes: every sealed JSONL line in order.
func (l *Ledger) Chain() []byte {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.chain...)
}

// Store returns the ledger's content-addressed blob store.
func (l *Ledger) Store() Store {
	if l == nil {
		return nil
	}
	return l.store
}

// Err returns the first commit error (canonical-encoding rejection,
// store I/O, sink I/O), if any. The ledger is write-only instrumentation,
// so errors are held here rather than propagated into the runtime.
func (l *Ledger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats reports commit count and cumulative wall time spent committing —
// bench-only observability, never serialized into the chain.
func (l *Ledger) Stats() (commits int, commitNS int64, blobBytes int64) {
	if l == nil {
		return 0, 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commits, l.commitNS, l.blobIn
}

// Begin opens a record batch of the given kind at the given controller
// epoch. On a nil ledger it returns nil, and all Batch methods are
// nil-safe no-ops.
func (l *Ledger) Begin(kind string, epoch uint64) *Batch {
	if l == nil {
		return nil
	}
	return &Batch{l: l, kind: kind, epoch: epoch}
}

// Batch accumulates a record's items before Commit seals them. Item and
// Blob accept an (encoding) error alongside the bytes so call sites stay
// one line; the first error poisons the batch and surfaces from Commit
// and Ledger.Err.
type Batch struct {
	l     *Ledger
	kind  string
	epoch uint64
	items []ItemRef
	err   error
}

// Item appends an inline item. A non-nil err (from the caller's encoder)
// poisons the batch instead.
func (b *Batch) Item(kind, key string, data []byte, err error) {
	if b == nil {
		return
	}
	if err != nil {
		if b.err == nil {
			b.err = fmt.Errorf("ledger: item %s/%s: %w", kind, key, err)
		}
		return
	}
	b.items = append(b.items, ItemRef{Kind: kind, Key: key, Data: data})
}

// Blob stores data off-chain in the content-addressed store and appends
// an item referencing it by digest.
func (b *Batch) Blob(kind, key string, data []byte, err error) {
	if b == nil {
		return
	}
	if err != nil {
		if b.err == nil {
			b.err = fmt.Errorf("ledger: blob %s/%s: %w", kind, key, err)
		}
		return
	}
	ref, perr := b.l.store.Put(data)
	if perr != nil {
		if b.err == nil {
			b.err = fmt.Errorf("ledger: blob %s/%s: %w", kind, key, perr)
		}
		return
	}
	b.l.mu.Lock()
	b.l.blobIn += int64(len(data))
	b.l.mu.Unlock()
	b.items = append(b.items, ItemRef{Kind: kind, Key: key, Ref: ref})
}

// Err returns the batch's poisoning error, if any.
func (b *Batch) Err() error {
	if b == nil {
		return nil
	}
	return b.err
}

// Commit seals the batch into the chain: Merkle-commits the items,
// chains to the current head, appends the JSONL line, and advances the
// head to the line's digest. Commit order defines chain order, so
// callers commit from the serial epoch loop only.
func (b *Batch) Commit() (Record, error) {
	if b == nil {
		return Record{}, nil
	}
	l := b.l
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if b.err != nil {
		if l.err == nil {
			l.err = b.err
		}
		return Record{}, b.err
	}
	rec := Record{
		Seq:   len(l.recs),
		Kind:  b.kind,
		Epoch: b.epoch,
		Run:   l.run,
		ID:    fmt.Sprintf("%016x", uint64(parallel.SplitSeed(l.seed, int64(len(l.recs))))),
		Prev:  l.head.Hex(),
		Items: b.items,
	}
	var mb MerkleBatcher
	for _, it := range rec.Items {
		mb.Add(LeafBytes(it))
	}
	rec.Root = mb.Root().Hex()
	line, err := json.Marshal(rec)
	if err != nil {
		if l.err == nil {
			l.err = fmt.Errorf("ledger: marshal record %d: %w", rec.Seq, err)
		}
		return Record{}, err
	}
	l.head = Sum(line)
	l.recs = append(l.recs, rec)
	l.chain = append(l.chain, line...)
	l.chain = append(l.chain, '\n')
	if l.sink != nil {
		if _, werr := l.sink.Write(append(line, '\n')); werr != nil && l.err == nil {
			l.err = fmt.Errorf("ledger: sink: %w", werr)
		}
	}
	l.commits++
	l.commitNS += time.Since(start).Nanoseconds()
	return rec, nil
}

// RecordProof rebuilds the record's Merkle batch and returns the
// inclusion proof for item index i — usable offline from a parsed chain
// line alone.
func RecordProof(rec Record, i int) (Proof, error) {
	var mb MerkleBatcher
	for _, it := range rec.Items {
		mb.Add(LeafBytes(it))
	}
	return mb.Proof(i)
}

// VerifyItem checks an item's inclusion proof against its record's root.
func VerifyItem(rec Record, i int, p Proof) bool {
	if i < 0 || i >= len(rec.Items) {
		return false
	}
	return VerifyProof(LeafBytes(rec.Items[i]), p, rec.Root)
}
