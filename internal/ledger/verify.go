package ledger

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// VerifyOptions anchors a chain verification. The chain head is the
// single root of trust: with Head pinned, any single-byte change to any
// record line or referenced blob fails verification.
type VerifyOptions struct {
	// Head, when non-empty, is the expected digest of the final record
	// line (the externally pinned trust anchor — HEAD file, trace dump
	// header, or log line). Without it, a truncation or rewrite of the
	// chain tail is undetectable, so verifiers should always supply one.
	Head string
	// GenesisPrev, when non-empty, is the expected Prev of record 0 —
	// GenesisHex(seed) when the run seed is known.
	GenesisPrev string
	// Store resolves off-chain blob references; required when any record
	// carries one.
	Store Store
}

// ChainSummary reports what a successful verification covered.
type ChainSummary struct {
	Records    int
	Items      int
	Blobs      int // blob references checked (each re-hashed)
	ChainBytes int64
	BlobBytes  int64 // distinct referenced blob bytes
	Head       string
	Epochs     uint64 // final controller epoch
	Kinds      map[string]int
}

// VerifyChain replays a raw JSONL chain and validates every guarantee
// the ledger makes: strict record schema, dense sequence numbers,
// non-decreasing epochs, hash-chain links, Merkle roots recomputed from
// the items, and every off-chain blob re-hashed against its on-chain
// reference. It returns the first violation found, or a summary of the
// verified history.
func VerifyChain(chain []byte, opts VerifyOptions) (*ChainSummary, error) {
	sum := &ChainSummary{Kinds: make(map[string]int)}
	lines := bytes.Split(chain, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("ledger: empty chain")
	}
	known := KnownRecordKinds()
	seenBlobs := make(map[string]bool)
	var prevHex string
	var prevEpoch uint64
	for i, line := range lines {
		var rec Record
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("ledger: record %d: parse: %w", i, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("ledger: record %d: trailing data on line", i)
		}
		if rec.Seq != i {
			return nil, fmt.Errorf("ledger: record %d: seq %d out of order", i, rec.Seq)
		}
		if !known[rec.Kind] {
			return nil, fmt.Errorf("ledger: record %d: unknown kind %q", i, rec.Kind)
		}
		if err := checkHex(rec.ID, 16); err != nil {
			return nil, fmt.Errorf("ledger: record %d: id: %w", i, err)
		}
		if err := checkHex(rec.Prev, 64); err != nil {
			return nil, fmt.Errorf("ledger: record %d: prev: %w", i, err)
		}
		if err := checkHex(rec.Root, 64); err != nil {
			return nil, fmt.Errorf("ledger: record %d: root: %w", i, err)
		}
		if rec.Epoch < prevEpoch {
			return nil, fmt.Errorf("ledger: record %d: epoch %d regressed from %d", i, rec.Epoch, prevEpoch)
		}
		prevEpoch = rec.Epoch
		switch {
		case i == 0 && opts.GenesisPrev != "" && rec.Prev != opts.GenesisPrev:
			return nil, fmt.Errorf("ledger: record 0: prev %s is not the genesis digest %s", rec.Prev, opts.GenesisPrev)
		case i > 0 && rec.Prev != prevHex:
			return nil, fmt.Errorf("ledger: record %d: chain break: prev %s, want %s", i, rec.Prev, prevHex)
		}

		var mb MerkleBatcher
		for j, it := range rec.Items {
			if it.Key == "" {
				return nil, fmt.Errorf("ledger: record %d item %d: empty key", i, j)
			}
			if it.Ref != "" {
				if len(it.Data) != 0 {
					return nil, fmt.Errorf("ledger: record %d item %d: both inline data and blob ref", i, j)
				}
				if err := checkHex(it.Ref, 64); err != nil {
					return nil, fmt.Errorf("ledger: record %d item %d: ref: %w", i, j, err)
				}
				if opts.Store == nil {
					return nil, fmt.Errorf("ledger: record %d item %d: blob ref %s but no store to resolve it", i, j, it.Ref)
				}
				blob, err := opts.Store.Get(it.Ref)
				if err != nil {
					return nil, fmt.Errorf("ledger: record %d item %d: %w", i, j, err)
				}
				if got := Sum(blob).Hex(); got != it.Ref {
					return nil, fmt.Errorf("ledger: record %d item %d: blob digest %s does not match ref %s", i, j, got, it.Ref)
				}
				sum.Blobs++
				if !seenBlobs[it.Ref] {
					seenBlobs[it.Ref] = true
					sum.BlobBytes += int64(len(blob))
				}
			} else if len(it.Data) == 0 {
				return nil, fmt.Errorf("ledger: record %d item %d: neither inline data nor blob ref", i, j)
			}
			mb.Add(LeafBytes(it))
			sum.Items++
		}
		if got := mb.Root().Hex(); got != rec.Root {
			return nil, fmt.Errorf("ledger: record %d: merkle root %s does not match items (%s)", i, rec.Root, got)
		}

		prevHex = Sum(line).Hex()
		sum.Records++
		sum.ChainBytes += int64(len(line)) + 1
		sum.Kinds[rec.Kind]++
		sum.Epochs = rec.Epoch
	}
	sum.Head = prevHex
	if opts.Head != "" && prevHex != opts.Head {
		return nil, fmt.Errorf("ledger: chain head %s does not match pinned head %s", prevHex, opts.Head)
	}
	return sum, nil
}

func checkHex(s string, n int) error {
	if len(s) != n {
		return fmt.Errorf("want %d hex chars, got %d", n, len(s))
	}
	if _, err := hex.DecodeString(s); err != nil {
		return fmt.Errorf("not hex: %w", err)
	}
	return nil
}
