package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrNonFinite rejects NaN/Inf floats at commit time. NaN payloads are
// not one value but a family of bit patterns (quiet/signaling, payload
// bits, sign) that different compilers and architectures propagate
// differently — hashing whichever pattern a platform happened to produce
// would silently fork byte-identical chains. Callers detect it with
// errors.Is.
var ErrNonFinite = errors.New("non-finite float in canonical encoding")

// Enc is the ledger's canonical binary encoder: little-endian fixed
// width for numerics, uvarint length prefixes for bytes/strings/lists.
// The zero value is ready to use. Errors (only ErrNonFinite today) stick
// and surface from Finish, so call sites encode straight-line and check
// once.
type Enc struct {
	buf []byte
	err error
}

// U64 appends a fixed 8-byte little-endian unsigned integer.
func (e *Enc) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// I64 appends a fixed 8-byte little-endian two's-complement integer.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Bool appends one byte, 0 or 1.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends the IEEE-754 bits of a finite float, little-endian. A NaN
// or infinity poisons the encoder with ErrNonFinite.
func (e *Enc) F64(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		if e.err == nil {
			e.err = fmt.Errorf("value %v: %w", v, ErrNonFinite)
		}
		return
	}
	e.U64(math.Float64bits(v))
}

// Bytes appends a uvarint length prefix followed by the raw bytes.
func (e *Enc) Bytes(p []byte) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(p)))
	e.buf = append(e.buf, p...)
}

// Str appends a string as Bytes.
func (e *Enc) Str(s string) { e.Bytes([]byte(s)) }

// Ints appends a uvarint count followed by each element as I64.
func (e *Enc) Ints(v []int) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	for _, x := range v {
		e.I64(int64(x))
	}
}

// Strs appends a uvarint count followed by each element as Str.
func (e *Enc) Strs(v []string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	for _, s := range v {
		e.Str(s)
	}
}

// U64s appends a uvarint count followed by each element as U64.
func (e *Enc) U64s(v []uint64) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// Err returns the sticky encoding error, if any.
func (e *Enc) Err() error { return e.err }

// Finish returns the canonical bytes, or the first encoding error.
func (e *Enc) Finish() ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	return e.buf, nil
}

// Dec decodes Enc's canonical encoding. The zero offset starts at the
// front; errors stick and surface from Err/Done.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps canonical bytes for decoding.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("ledger: truncated canonical encoding at %s (offset %d)", what, d.off)
	}
}

// U64 reads a fixed 8-byte little-endian unsigned integer.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads a fixed 8-byte little-endian signed integer.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Bool reads one byte as a boolean.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("bool")
		return false
	}
	v := d.buf[d.off]
	d.off++
	return v != 0
}

// F64 reads IEEE-754 bits (always finite: Enc refused anything else).
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

func (d *Dec) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

// Bytes reads a length-prefixed byte string.
func (d *Dec) Bytes() []byte {
	n := d.uvarint("bytes length")
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("bytes")
		return nil
	}
	out := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.Bytes()) }

// Ints reads a count-prefixed []int.
func (d *Dec) Ints() []int {
	n := d.uvarint("ints count")
	if d.err != nil || n == 0 {
		return nil
	}
	if uint64(len(d.buf)-d.off) < n*8 {
		d.fail("ints")
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.I64())
	}
	return out
}

// Strs reads a count-prefixed []string.
func (d *Dec) Strs() []string {
	n := d.uvarint("strs count")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.Str())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// U64s reads a count-prefixed []uint64.
func (d *Dec) U64s() []uint64 {
	n := d.uvarint("u64s count")
	if d.err != nil || n == 0 {
		return nil
	}
	if uint64(len(d.buf)-d.off) < n*8 {
		d.fail("u64s")
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// Err returns the sticky decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Done returns an error if decoding failed or bytes remain unconsumed —
// canonical encodings have no slack.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("ledger: %d trailing bytes in canonical encoding", len(d.buf)-d.off)
	}
	return nil
}
