package ledger

import (
	"fmt"
	"testing"
)

// Every leaf of every batch size up to 9 (covering unbalanced RFC 6962
// shapes) must prove into the root, and only at its own index.
func TestMerkleProofsAllSizes(t *testing.T) {
	for n := 1; n <= 9; n++ {
		var mb MerkleBatcher
		data := make([][]byte, n)
		for i := 0; i < n; i++ {
			data[i] = []byte(fmt.Sprintf("item-%d-of-%d", i, n))
			if got := mb.Add(data[i]); got != i {
				t.Fatalf("n=%d: Add returned index %d, want %d", n, got, i)
			}
		}
		root := mb.Root().Hex()
		for i := 0; i < n; i++ {
			p, err := mb.Proof(i)
			if err != nil {
				t.Fatalf("n=%d: Proof(%d): %v", n, i, err)
			}
			if !VerifyProof(data[i], p, root) {
				t.Fatalf("n=%d: proof for leaf %d does not verify", n, i)
			}
			// Same proof, wrong data: must fail.
			if VerifyProof([]byte("forged"), p, root) {
				t.Fatalf("n=%d: forged data verified at leaf %d", n, i)
			}
			// Same data, wrong index: must fail (except the trivial n=1).
			if n > 1 {
				wrong := p
				wrong.Index = (p.Index + 1) % n
				if VerifyProof(data[i], wrong, root) {
					t.Fatalf("n=%d: proof verified at wrong index", n)
				}
			}
		}
	}
}

func TestMerkleRootStability(t *testing.T) {
	build := func() string {
		var mb MerkleBatcher
		mb.Add([]byte("a"))
		mb.Add([]byte("b"))
		mb.Add([]byte("c"))
		return mb.Root().Hex()
	}
	if build() != build() {
		t.Fatal("same items produced different roots")
	}
	var mb MerkleBatcher
	mb.Add([]byte("b"))
	mb.Add([]byte("a"))
	mb.Add([]byte("c"))
	if mb.Root().Hex() == build() {
		t.Fatal("reordered items produced the same root")
	}
}

func TestMerkleEmptyAndReset(t *testing.T) {
	var mb MerkleBatcher
	empty := mb.Root()
	if empty == (Digest{}) {
		t.Fatal("empty root is the zero digest")
	}
	mb.Add([]byte("x"))
	if mb.Root() == empty {
		t.Fatal("one-item root equals empty root")
	}
	mb.Reset()
	if mb.Len() != 0 || mb.Root() != empty {
		t.Fatal("Reset did not restore the empty batch")
	}
	if _, err := mb.Proof(0); err == nil {
		t.Fatal("Proof on empty batch succeeded")
	}
}

// A single-leaf tree must not accept a padded path, and a multi-leaf
// proof must not verify with its path truncated — both are shapes a
// forger could try.
func TestMerkleProofShapeStrictness(t *testing.T) {
	var mb MerkleBatcher
	data := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	for _, d := range data {
		mb.Add(d)
	}
	root := mb.Root().Hex()
	p, err := mb.Proof(2)
	if err != nil {
		t.Fatal(err)
	}
	trunc := p
	trunc.Path = p.Path[:len(p.Path)-1]
	if VerifyProof(data[2], trunc, root) {
		t.Fatal("truncated path verified")
	}
	single := Proof{Index: 0, Leaves: 1, Path: p.Path}
	if VerifyProof(data[2], single, root) {
		t.Fatal("padded single-leaf proof verified")
	}
	if VerifyProof(data[2], p, "zz") {
		t.Fatal("malformed root hex verified")
	}
}
