package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 1 << 30, runtime.GOMAXPROCS(0)},
		{1, 100, 1},
		{4, 100, 4},
		{-3, 100, 1},
		{8, 3, 3},
		{8, 0, 0},
	}
	for _, c := range cases {
		if got := Resolve(c.workers, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		ForEach(w, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, got)
			}
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	square := func(i int) int { return i * i }
	serial := Map(1, 50, square)
	for _, w := range []int{2, 4, 7} {
		if got := Map(w, 50, square); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: %v != serial %v", w, got, serial)
		}
	}
}

func TestMapErrReportsLowestIndex(t *testing.T) {
	errAt := func(bad ...int) func(int) (int, error) {
		set := map[int]bool{}
		for _, b := range bad {
			set[b] = true
		}
		return func(i int) (int, error) {
			if set[i] {
				return 0, fmt.Errorf("item %d failed", i)
			}
			return i, nil
		}
	}
	for _, w := range []int{1, 4} {
		if _, err := MapErr(w, 20, errAt(13, 5, 17)); err == nil || err.Error() != "item 5 failed" {
			t.Fatalf("workers=%d: err = %v, want item 5 failed", w, err)
		}
		out, err := MapErr(w, 20, errAt())
		if err != nil || len(out) != 20 || out[19] != 19 {
			t.Fatalf("workers=%d: clean run got (%v, %v)", w, out, err)
		}
	}
}

func TestSplitSeedStreamsAreDistinctAndStable(t *testing.T) {
	seen := map[int64]int64{}
	for stream := int64(0); stream < 10000; stream++ {
		s := SplitSeed(42, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide on seed %d", prev, stream, s)
		}
		seen[s] = stream
	}
	if SplitSeed(42, 3) != SplitSeed(42, 3) {
		t.Fatal("SplitSeed is not a pure function")
	}
	if SplitSeed(42, 3) == SplitSeed(43, 3) {
		t.Fatal("parent seed ignored")
	}
}

// TestDerivedRNGsAreIndependentUnderRace exercises the intended usage under
// the race detector: one derived rand.Rand per work item, none shared.
func TestDerivedRNGsAreIndependentUnderRace(t *testing.T) {
	const n = 64
	draw := func(i int) float64 {
		rng := rand.New(rand.NewSource(SplitSeed(7, int64(i))))
		var sum float64
		for k := 0; k < 100; k++ {
			sum += rng.Float64()
		}
		return sum
	}
	serial := Map(1, n, draw)
	parallelRun := Map(8, n, draw)
	if !reflect.DeepEqual(serial, parallelRun) {
		t.Fatal("per-item derived RNG draws differ between serial and parallel runs")
	}
}

func TestMapErrNilOnFailure(t *testing.T) {
	out, err := MapErr(4, 10, func(i int) (int, error) {
		if i == 9 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want nil slice and error", out, err)
	}
}
