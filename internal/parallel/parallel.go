// Package parallel is the worker-pool layer shared by the emulation and
// solver sweep engines. It provides deterministic fan-out over independent
// work items: results land in index-addressed slots and are merged in index
// order, so for a fixed input the output is byte-identical no matter how
// many workers raced (including the workers == 1 serial path).
//
// The determinism contract (documented in DESIGN.md) has two halves:
//
//   - The pool guarantees index-ordered merging and inline execution when
//     workers == 1.
//   - The callee guarantees each work item is a pure function of its index:
//     no shared mutable state, and any randomness derived per item via
//     SplitSeed rather than drawn from a shared *rand.Rand (which is both
//     racy and schedule-dependent).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers knob to a concrete worker count: 0 (the default)
// selects GOMAXPROCS, negative values are treated as 1, and the count is
// never larger than n (spawning more workers than items buys nothing).
func Resolve(workers, n int) int {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if n >= 0 && workers > n {
		workers = n
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n). With a resolved worker count of
// 1 it runs inline on the calling goroutine — the legacy serial path, with
// no goroutines and no synchronization. Otherwise items are handed out via
// an atomic counter so uneven per-item cost self-balances. fn must confine
// its writes to state owned by item i.
func ForEach(workers, n int, fn func(i int)) {
	w := Resolve(workers, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every index in [0, n) and returns the results in index
// order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for fallible work. Every item runs to completion; if any
// failed, the error of the lowest failing index is returned (with a nil
// slice), so the reported failure does not depend on goroutine scheduling.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SplitSeed derives the child seed for work item stream of a parent seed
// (SplitMix64 finalization over the golden-ratio increment). Child streams
// are statistically independent of each other and of the parent, which is
// what lets every work item own a private rand.Rand while the whole sweep
// stays reproducible from one seed.
func SplitSeed(seed, stream int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(stream)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
