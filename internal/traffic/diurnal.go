package traffic

import (
	"math"

	"nwdeploy/internal/parallel"
)

// Diurnal and flash-crowd factor generators: multiplicative per-pair
// volume modulation for the scenario layer. Where BurstySeries synthesizes
// a whole epoch series up front, these produce one epoch's factors on
// demand — scenario drivers compose them (a flash crowd rides on top of
// the diurnal swing) by multiplying factor vectors elementwise. Both are
// pure functions of (config, epoch), so scenario replays are bit-for-bit
// reproducible at any worker count.

// DiurnalConfig shapes the sinusoidal day/night swing.
type DiurnalConfig struct {
	// Period is the cycle length in epochs (0 selects 24).
	Period int
	// Amplitude is the peak-to-mean swing fraction in (0, 1); volumes vary
	// in [1-Amplitude, 1+Amplitude] times the mean. Zero selects 0.4;
	// values are clamped below 1 so factors stay positive.
	Amplitude float64
	// Seed dephases pairs: each pair's peak hour is drawn from the seed, so
	// the matrix tilts over the cycle instead of scaling uniformly (the
	// drift that forces replans, not just governor absorption).
	Seed int64
}

func (c DiurnalConfig) withDefaults() DiurnalConfig {
	if c.Period <= 0 {
		c.Period = 24
	}
	if c.Amplitude == 0 {
		c.Amplitude = 0.4
	}
	if c.Amplitude >= 1 {
		c.Amplitude = 0.95
	}
	if c.Amplitude < 0 {
		c.Amplitude = 0
	}
	return c
}

// DiurnalFactors returns the per-pair multiplicative factors for one epoch
// of the diurnal cycle: factor[k] = 1 + A*sin(2π(epoch/Period + phase_k)),
// with phase_k seeded per pair.
func DiurnalFactors(nPairs, epoch int, cfg DiurnalConfig) []float64 {
	cfg = cfg.withDefaults()
	// Fold the epoch into the cycle in integer space so the series is
	// bitwise periodic (float 2π(e+P)/P and 2π·e/P + 2π round differently).
	em := epoch % cfg.Period
	if em < 0 {
		em += cfg.Period
	}
	out := make([]float64, nPairs)
	for k := range out {
		phase := float64(uint64(parallel.SplitSeed(cfg.Seed, int64(k)))>>11) / (1 << 53)
		out[k] = 1 + cfg.Amplitude*math.Sin(2*math.Pi*(float64(em)/float64(cfg.Period)+phase))
	}
	return out
}

// FlashConfig shapes a flash crowd: a transient volume spike concentrated
// on every pair touching one ingress node.
type FlashConfig struct {
	// Ingress is the node the crowd converges on: every pair with this
	// node as source or destination spikes. Negative selects node 0.
	Ingress int
	// Peak is the multiplicative factor at the crowd's height (0 selects 6).
	Peak float64
	// Start is the first epoch of the crowd (0-based).
	Start int
	// Duration is the crowd's length in epochs (0 selects 4). The factor
	// ramps linearly up to Peak at the midpoint and back down — the
	// build-up/decay shape of real flash crowds, and a harder test for the
	// drift detector than a step.
	Duration int
}

func (c FlashConfig) withDefaults() FlashConfig {
	if c.Ingress < 0 {
		c.Ingress = 0
	}
	if c.Peak == 0 {
		c.Peak = 6
	}
	if c.Peak < 1 {
		c.Peak = 1
	}
	if c.Duration <= 0 {
		c.Duration = 4
	}
	return c
}

// FlashFactors returns the per-pair factors for one epoch of a flash
// crowd: 1 everywhere except pairs touching the ingress during the event
// window, which ramp to Peak and back.
func FlashFactors(pairs [][2]int, epoch int, cfg FlashConfig) []float64 {
	cfg = cfg.withDefaults()
	out := make([]float64, len(pairs))
	for k := range out {
		out[k] = 1
	}
	rel := epoch - cfg.Start
	if rel < 0 || rel >= cfg.Duration {
		return out
	}
	// Triangular ramp: 0 at the window edges, 1 at the midpoint.
	pos := (float64(rel) + 0.5) / float64(cfg.Duration)
	ramp := 1 - math.Abs(2*pos-1)
	f := 1 + (cfg.Peak-1)*ramp
	for k, p := range pairs {
		if p[0] == cfg.Ingress || p[1] == cfg.Ingress {
			out[k] = f
		}
	}
	return out
}
