package traffic

import (
	"math"
	"math/rand"
	"sort"
)

// The paper's Section 5 "Traffic changes" discussion: the optimization runs
// on periodic traffic reports and is re-run every few minutes, but
// "to handle short-term bursts, we can use conservative values; e.g.,
// 95%ile values to account for bursty patterns and tradeoff some loss in
// optimality for better robustness". This file provides the epoch series
// and quantile machinery that the conservative planner consumes.

// EpochSeries holds per-epoch traffic volumes for a fixed pair set:
// Volumes[e][k] is the items volume of pair k during epoch e.
type EpochSeries struct {
	Pairs   [][2]int
	Volumes [][]float64
}

// BurstConfig shapes the synthetic epoch series.
type BurstConfig struct {
	Epochs int
	// BaseJitter is the multiplicative noise around the mean volume
	// (e.g. 0.1 for +-10%). Zero selects 0.1.
	BaseJitter float64
	// BurstProb is the per-(epoch, pair) probability of a burst. Zero
	// selects 0.05.
	BurstProb float64
	// BurstFactor multiplies the mean volume during a burst. Zero
	// selects 3.
	BurstFactor float64
	Seed        int64
}

// BurstySeries synthesizes an epoch series around the gravity-model means:
// lognormal-ish jitter plus occasional multiplicative bursts, the
// short-term dynamics the conservative provisioning guards against.
func BurstySeries(pv PathVolumes, cfg BurstConfig) *EpochSeries {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	if cfg.BaseJitter == 0 {
		cfg.BaseJitter = 0.1
	}
	if cfg.BurstProb == 0 {
		cfg.BurstProb = 0.05
	}
	if cfg.BurstFactor == 0 {
		cfg.BurstFactor = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Burstiness is heterogeneous across pairs (some customer paths are
	// spiky, others steady), which is what makes conservative provisioning
	// differ from mean provisioning.
	pairProb := make([]float64, len(pv.Pairs))
	for k := range pairProb {
		pairProb[k] = rng.Float64() * 2 * cfg.BurstProb
	}
	s := &EpochSeries{Pairs: pv.Pairs}
	for e := 0; e < cfg.Epochs; e++ {
		vols := make([]float64, len(pv.Items))
		for k, mean := range pv.Items {
			v := mean * math.Exp(rng.NormFloat64()*cfg.BaseJitter)
			if rng.Float64() < pairProb[k] {
				v *= cfg.BurstFactor
			}
			vols[k] = v
		}
		s.Volumes = append(s.Volumes, vols)
	}
	return s
}

// Quantile returns, per pair, the q-quantile (0 < q <= 1) of the epoch
// volumes — Quantile(0.95) is the paper's conservative provisioning input.
func (s *EpochSeries) Quantile(q float64) []float64 {
	if q <= 0 {
		q = 0.5
	}
	if q > 1 {
		q = 1
	}
	out := make([]float64, len(s.Pairs))
	tmp := make([]float64, len(s.Volumes))
	for k := range s.Pairs {
		for e := range s.Volumes {
			tmp[e] = s.Volumes[e][k]
		}
		sort.Float64s(tmp)
		idx := int(math.Ceil(q*float64(len(tmp)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[k] = tmp[idx]
	}
	return out
}

// Mean returns the per-pair mean volumes.
func (s *EpochSeries) Mean() []float64 {
	out := make([]float64, len(s.Pairs))
	for k := range s.Pairs {
		var sum float64
		for e := range s.Volumes {
			sum += s.Volumes[e][k]
		}
		out[k] = sum / float64(len(s.Volumes))
	}
	return out
}
