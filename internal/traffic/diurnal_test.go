package traffic

import (
	"math"
	"reflect"
	"testing"
)

func TestDiurnalFactorsDeterministicAndBounded(t *testing.T) {
	cfg := DiurnalConfig{Period: 12, Amplitude: 0.4, Seed: 9}
	for e := 0; e < 24; e++ {
		a := DiurnalFactors(20, e, cfg)
		b := DiurnalFactors(20, e, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("epoch %d: same config produced different factors", e)
		}
		for k, f := range a {
			if f < 1-cfg.Amplitude-1e-12 || f > 1+cfg.Amplitude+1e-12 {
				t.Fatalf("epoch %d pair %d: factor %v outside 1±%v", e, k, f, cfg.Amplitude)
			}
		}
	}
	// One full period later the cycle repeats exactly.
	if a, b := DiurnalFactors(20, 3, cfg), DiurnalFactors(20, 3+cfg.Period, cfg); !reflect.DeepEqual(a, b) {
		t.Fatal("diurnal cycle not periodic")
	}
}

// Seeded phases must dephase pairs: a uniform swing would never tilt the
// matrix, so the whole point of the scenario (drift, not just load) would
// vanish.
func TestDiurnalFactorsDephased(t *testing.T) {
	f := DiurnalFactors(16, 0, DiurnalConfig{Seed: 9})
	distinct := map[float64]bool{}
	for _, v := range f {
		distinct[v] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("16 pairs produced only %d distinct phases", len(distinct))
	}
	// A different seed permutes the phases.
	g := DiurnalFactors(16, 0, DiurnalConfig{Seed: 10})
	if reflect.DeepEqual(f, g) {
		t.Fatal("two seeds produced identical phase assignments")
	}
}

func TestFlashFactorsWindowAndTarget(t *testing.T) {
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}}
	cfg := FlashConfig{Ingress: 3, Peak: 6, Start: 2, Duration: 4}
	// Outside the window every factor is 1.
	for _, e := range []int{0, 1, 6, 7} {
		for k, f := range FlashFactors(pairs, e, cfg) {
			if f != 1 {
				t.Fatalf("epoch %d pair %d: factor %v outside the event window", e, k, f)
			}
		}
	}
	// Inside: only pairs touching the ingress spike, peaking mid-window.
	var peak float64
	for e := 2; e < 6; e++ {
		f := FlashFactors(pairs, e, cfg)
		for k, p := range pairs {
			touches := p[0] == cfg.Ingress || p[1] == cfg.Ingress
			if !touches && f[k] != 1 {
				t.Fatalf("epoch %d: non-ingress pair %v scaled %v", e, p, f[k])
			}
			if touches {
				if f[k] < 1 || f[k] > cfg.Peak {
					t.Fatalf("epoch %d: ingress factor %v outside [1, %v]", e, f[k], cfg.Peak)
				}
				peak = math.Max(peak, f[k])
			}
		}
	}
	if peak < cfg.Peak*0.7 {
		t.Fatalf("ramp never approached the configured peak: max %v of %v", peak, cfg.Peak)
	}
}
