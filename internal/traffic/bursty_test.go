package traffic

import (
	"testing"

	"nwdeploy/internal/topology"
)

func burstySeries(t *testing.T, epochs int) *EpochSeries {
	t.Helper()
	tp := topology.Internet2()
	pv := Volumes(tp, Gravity(tp), 20)
	return BurstySeries(pv, BurstConfig{Epochs: epochs, BurstProb: 0.1, BurstFactor: 3, Seed: 5})
}

func TestBurstySeriesShape(t *testing.T) {
	s := burstySeries(t, 80)
	if len(s.Volumes) != 80 || len(s.Pairs) != 20 {
		t.Fatalf("series is %dx%d", len(s.Volumes), len(s.Pairs))
	}
	for e := range s.Volumes {
		for k := range s.Volumes[e] {
			if s.Volumes[e][k] <= 0 {
				t.Fatalf("nonpositive volume at epoch %d pair %d", e, k)
			}
		}
	}
}

func TestQuantileOrdering(t *testing.T) {
	s := burstySeries(t, 120)
	p50 := s.Quantile(0.5)
	p95 := s.Quantile(0.95)
	p100 := s.Quantile(1)
	mean := s.Mean()
	for k := range s.Pairs {
		if p50[k] > p95[k] || p95[k] > p100[k] {
			t.Fatalf("pair %d: quantiles not ordered: %v %v %v", k, p50[k], p95[k], p100[k])
		}
		if mean[k] <= 0 {
			t.Fatalf("pair %d: nonpositive mean", k)
		}
		// p100 is the max: every epoch's value is <= it.
		for e := range s.Volumes {
			if s.Volumes[e][k] > p100[k] {
				t.Fatalf("pair %d epoch %d exceeds the 1.0-quantile", k, e)
			}
		}
	}
}

func TestBurstsInflateTheTail(t *testing.T) {
	s := burstySeries(t, 200)
	p95 := s.Quantile(0.95)
	mean := s.Mean()
	inflated := 0
	for k := range s.Pairs {
		if p95[k] > 1.3*mean[k] {
			inflated++
		}
	}
	if inflated == 0 {
		t.Fatal("no pair shows a bursty tail; generator inert")
	}
}

func TestQuantileClamping(t *testing.T) {
	s := burstySeries(t, 30)
	if got := s.Quantile(-1); len(got) != len(s.Pairs) {
		t.Fatal("negative quantile not clamped")
	}
	if got := s.Quantile(2); len(got) != len(s.Pairs) {
		t.Fatal("overlarge quantile not clamped")
	}
}
