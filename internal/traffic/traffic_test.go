package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"nwdeploy/internal/topology"
)

func TestGravitySumsToOne(t *testing.T) {
	for _, tp := range []*topology.Topology{topology.Internet2(), topology.Geant()} {
		m := Gravity(tp)
		if math.Abs(m.Sum()-1) > 1e-9 {
			t.Fatalf("%s: gravity sum = %v, want 1", tp.Name, m.Sum())
		}
		for a := range m {
			if m[a][a] != 0 {
				t.Fatalf("%s: nonzero diagonal at %d", tp.Name, a)
			}
		}
	}
}

func TestGravityNewYorkDominates(t *testing.T) {
	// The paper: "node 11 ... corresponds to New York, which in a gravity
	// model based traffic matrix carries a significant volume of traffic."
	tp := topology.Internet2()
	m := Gravity(tp)
	ny, _ := tp.NodeByName("NYCM")
	vol := make([]float64, tp.N())
	for a := range m {
		for b := range m[a] {
			vol[a] += m[a][b]
			vol[b] += m[a][b]
		}
	}
	for i, v := range vol {
		if i != ny.ID && v >= vol[ny.ID] {
			t.Fatalf("node %d volume %v >= NYC volume %v", i, v, vol[ny.ID])
		}
	}
}

func TestTopPairsOrderedAndBounded(t *testing.T) {
	tp := topology.Internet2()
	m := Gravity(tp)
	pairs := m.TopPairs(10)
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs, want 10", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		prev := m[pairs[i-1][0]][pairs[i-1][1]]
		cur := m[pairs[i][0]][pairs[i][1]]
		if cur > prev+1e-15 {
			t.Fatalf("pairs not sorted descending at %d: %v > %v", i, cur, prev)
		}
	}
	// Asking for more pairs than exist returns all of them.
	all := m.TopPairs(10_000)
	if len(all) != tp.N()*(tp.N()-1) {
		t.Fatalf("TopPairs(all) = %d, want %d", len(all), tp.N()*(tp.N()-1))
	}
}

func TestGenerateDeterministicAndWellFormed(t *testing.T) {
	tp := topology.Internet2()
	m := Gravity(tp)
	cfg := GenConfig{Sessions: 5000, Seed: 99}
	a := Generate(tp, m, cfg)
	b := Generate(tp, m, cfg)
	if len(a) != 5000 {
		t.Fatalf("generated %d sessions, want 5000", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at session %d", i)
		}
		s := a[i]
		if s.Src == s.Dst {
			t.Fatalf("session %d has equal endpoints", i)
		}
		if s.Packets < 2 {
			t.Fatalf("session %d has %d packets, want >= 2", i, s.Packets)
		}
		if s.Bytes < s.Packets*20 {
			t.Fatalf("session %d bytes %d below header floor", i, s.Bytes)
		}
		if NodeOfIP(s.Tuple.SrcIP) != s.Src || NodeOfIP(s.Tuple.DstIP) != s.Dst {
			t.Fatalf("session %d IP prefixes disagree with endpoints", i)
		}
		if s.Tuple.DstPort != s.Proto.Port {
			t.Fatalf("session %d server port %d != protocol port %d", i, s.Tuple.DstPort, s.Proto.Port)
		}
	}
}

func TestGenerateFollowsMatrix(t *testing.T) {
	tp := topology.Internet2()
	m := Gravity(tp)
	sessions := Generate(tp, m, GenConfig{Sessions: 60000, Seed: 4})
	counts := make([][]float64, tp.N())
	for i := range counts {
		counts[i] = make([]float64, tp.N())
	}
	for _, s := range sessions {
		counts[s.Src][s.Dst]++
	}
	for a := range m {
		for b := range m[a] {
			if a == b {
				continue
			}
			got := counts[a][b] / float64(len(sessions))
			if math.Abs(got-m[a][b]) > 0.01+0.3*m[a][b] {
				t.Fatalf("pair (%d,%d): empirical share %v vs gravity %v", a, b, got, m[a][b])
			}
		}
	}
}

func TestGenerateFollowsProfile(t *testing.T) {
	tp := topology.Internet2()
	m := Gravity(tp)
	prof := MixedProfile()
	sessions := Generate(tp, m, GenConfig{Sessions: 40000, Seed: 8, Profile: prof})
	byProto := map[string]float64{}
	for _, s := range sessions {
		byProto[s.Proto.Name]++
	}
	for _, e := range prof {
		got := byProto[e.Proto.Name] / float64(len(sessions))
		if math.Abs(got-e.Share) > 0.02 {
			t.Fatalf("%s: share %v, want ~%v", e.Proto.Name, got, e.Share)
		}
	}
}

func TestSingleProtocolProfile(t *testing.T) {
	tp := topology.Internet2()
	m := Gravity(tp)
	sessions := Generate(tp, m, GenConfig{Sessions: 500, Seed: 2, Profile: SingleProtocolProfile(IRC)})
	for _, s := range sessions {
		if s.Proto.Name != "irc" {
			t.Fatalf("got protocol %s, want irc", s.Proto.Name)
		}
	}
}

func TestVolumesScaleWithTopologySize(t *testing.T) {
	i2 := topology.Internet2()
	ge := topology.Geant()
	v1 := Volumes(i2, Gravity(i2), 0)
	v2 := Volumes(ge, Gravity(ge), 0)
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if math.Abs(sum(v1.Items)-Internet2BaselineFlows) > 1 {
		t.Fatalf("Internet2 flow total = %v, want %v", sum(v1.Items), Internet2BaselineFlows)
	}
	wantGeant := Internet2BaselineFlows * float64(ge.N()) / 11
	if math.Abs(sum(v2.Items)-wantGeant) > 1 {
		t.Fatalf("Geant flow total = %v, want %v", sum(v2.Items), wantGeant)
	}
}

func TestVolumesPathCapKeepsPerPathShares(t *testing.T) {
	tp := topology.Geant()
	m := Gravity(tp)
	full := Volumes(tp, m, 0)
	capped := Volumes(tp, m, 25)
	if len(capped.Pairs) != 25 {
		t.Fatalf("capped to %d pairs, want 25", len(capped.Pairs))
	}
	// Each kept pair must retain exactly its full-matrix volume: capping
	// drops the tail, it must not inflate the heavy paths.
	fullByPair := map[[2]int]float64{}
	for i, p := range full.Pairs {
		fullByPair[p] = full.Items[i]
	}
	for i, p := range capped.Pairs {
		if math.Abs(capped.Items[i]-fullByPair[p]) > 1e-9*fullByPair[p] {
			t.Fatalf("pair %v volume changed under capping: %v vs %v", p, capped.Items[i], fullByPair[p])
		}
	}
}

func TestMatchRatesInRangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		m := MatchRates(7, 13, 0, 0.01, seed)
		for _, row := range m {
			for _, v := range row {
				if v < 0 || v >= 0.01 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchRatesDeterministic(t *testing.T) {
	a := MatchRates(3, 4, 0, 0.01, 77)
	b := MatchRates(3, 4, 0, 0.01, 77)
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatal("match rates not deterministic for fixed seed")
			}
		}
	}
}

func TestProfileNormalization(t *testing.T) {
	p := Profile{{HTTP, 2}, {DNS, 2}}.normalize()
	if math.Abs(p[0].Share-0.5) > 1e-12 || math.Abs(p[1].Share-0.5) > 1e-12 {
		t.Fatalf("normalize gave %v", p)
	}
}

func TestNodeHostIPRoundTrip(t *testing.T) {
	for n := 0; n < 60; n++ {
		for _, h := range []int{0, 1, 255, 256, 65535} {
			if got := NodeOfIP(nodeHostIP(n, h)); got != n {
				t.Fatalf("NodeOfIP(nodeHostIP(%d,%d)) = %d", n, h, got)
			}
		}
	}
}

func TestMatchRatesDistShapes(t *testing.T) {
	const high = 0.01
	for _, d := range []MatchDist{DistUniform, DistExponential, DistBimodal} {
		m := MatchRatesDist(d, 40, 40, high, 9)
		var sum float64
		var over float64
		n := 0
		for i := range m {
			for k := range m[i] {
				v := m[i][k]
				if v < 0 || v >= high {
					t.Fatalf("%v: value %v outside [0, %v)", d, v, high)
				}
				sum += v
				if v > high/2 {
					over++
				}
				n++
			}
		}
		mean := sum / float64(n)
		switch d {
		case DistUniform:
			if mean < 0.4*high || mean > 0.6*high {
				t.Fatalf("uniform mean %v, want ~%v", mean, high/2)
			}
		case DistExponential:
			// Truncated exponential: mean below high/2, skewed low.
			if mean > 0.5*high {
				t.Fatalf("exponential mean %v too high", mean)
			}
		case DistBimodal:
			// ~10% of cells sit in the hot mode above high/2.
			frac := over / float64(n)
			if frac < 0.05 || frac > 0.2 {
				t.Fatalf("bimodal hot fraction %v, want ~0.1", frac)
			}
		}
	}
	if DistUniform.String() != "uniform" || DistExponential.String() != "exponential" ||
		DistBimodal.String() != "bimodal" || MatchDist(9).String() != "MatchDist(9)" {
		t.Fatal("distribution names wrong")
	}
}
