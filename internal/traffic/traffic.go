// Package traffic synthesizes the workloads the paper evaluates on: a
// gravity-model traffic matrix derived from city populations (the paper's
// [30, 33]), a port-popularity traffic profile, and template-based session
// generation mirroring the paper's custom trace generator ("template
// sessions using real traffic captured for common protocols like HTTP, IRC,
// and Telnet, and synthetically generated traffic sessions for other
// protocols", Section 2.4). It also produces the per-path flow/packet
// volumes and rule match rates the NIPS formulation consumes (Section 3.4).
package traffic

import (
	"fmt"
	"math/rand"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
)

// Protocol describes a template for one application protocol's sessions.
type Protocol struct {
	Name      string
	Port      uint16
	Transport uint8 // 6 = TCP, 17 = UDP
	// MeanPkts is the mean number of packets per session (both directions).
	MeanPkts float64
	// MeanPayload is the mean payload bytes per packet.
	MeanPayload float64
}

// Template protocols. Means follow common trace statistics: HTTP sessions
// are short but payload-heavy, IRC sessions are long-lived and chatty,
// Telnet is interactive with tiny packets, TFTP is a short UDP exchange.
var (
	HTTP   = Protocol{Name: "http", Port: 80, Transport: 6, MeanPkts: 18, MeanPayload: 700}
	IRC    = Protocol{Name: "irc", Port: 6667, Transport: 6, MeanPkts: 60, MeanPayload: 120}
	Telnet = Protocol{Name: "telnet", Port: 23, Transport: 6, MeanPkts: 80, MeanPayload: 40}
	Rlogin = Protocol{Name: "rlogin", Port: 513, Transport: 6, MeanPkts: 70, MeanPayload: 48}
	TFTP   = Protocol{Name: "tftp", Port: 69, Transport: 17, MeanPkts: 10, MeanPayload: 512}
	SMTP   = Protocol{Name: "smtp", Port: 25, Transport: 6, MeanPkts: 14, MeanPayload: 400}
	DNS    = Protocol{Name: "dns", Port: 53, Transport: 17, MeanPkts: 2, MeanPayload: 80}
	HTTPS  = Protocol{Name: "https", Port: 443, Transport: 6, MeanPkts: 20, MeanPayload: 650}
	FTP    = Protocol{Name: "ftp", Port: 21, Transport: 6, MeanPkts: 24, MeanPayload: 300}
	SSH    = Protocol{Name: "ssh", Port: 22, Transport: 6, MeanPkts: 40, MeanPayload: 200}
	// MSRPC port 135: the vector the Blaster worm detector watches.
	MSRPC = Protocol{Name: "msrpc", Port: 135, Transport: 6, MeanPkts: 6, MeanPayload: 150}
	Other = Protocol{Name: "other", Port: 8000, Transport: 6, MeanPkts: 12, MeanPayload: 250}
)

// MixEntry pairs a protocol with its share of sessions.
type MixEntry struct {
	Proto Protocol
	Share float64
}

// Profile is a normalized protocol mix ("relative popularity of different
// application ports").
type Profile []MixEntry

// MixedProfile returns the default mixed profile that "stresses different
// modules" as in the paper's microbenchmarks: web-dominated with meaningful
// shares for every protocol a module watches.
func MixedProfile() Profile {
	p := Profile{
		{HTTP, 0.34}, {HTTPS, 0.10}, {DNS, 0.10}, {SMTP, 0.07},
		{IRC, 0.08}, {Telnet, 0.06}, {Rlogin, 0.03}, {TFTP, 0.06},
		{FTP, 0.04}, {SSH, 0.04}, {MSRPC, 0.04}, {Other, 0.04},
	}
	return p.normalize()
}

// SingleProtocolProfile returns a profile consisting entirely of one
// protocol, used by the standalone module microbenchmarks.
func SingleProtocolProfile(proto Protocol) Profile {
	return Profile{{proto, 1}}
}

func (p Profile) normalize() Profile {
	var sum float64
	for _, e := range p {
		sum += e.Share
	}
	if sum == 0 {
		panic("traffic: profile has zero total share")
	}
	out := make(Profile, len(p))
	for i, e := range p {
		out[i] = MixEntry{e.Proto, e.Share / sum}
	}
	return out
}

// Matrix is an ordered-pair traffic matrix: Matrix[a][b] is the fraction of
// total traffic whose ingress is a and egress is b. The diagonal is zero
// and entries sum to 1.
type Matrix [][]float64

// Gravity builds the gravity-model matrix the paper uses: the share for
// pair (a, b) is proportional to the product of the endpoint populations.
func Gravity(t *topology.Topology) Matrix {
	n := t.N()
	m := make(Matrix, n)
	var norm float64
	for a := 0; a < n; a++ {
		m[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			w := t.Nodes[a].Population * t.Nodes[b].Population
			m[a][b] = w
			norm += w
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			m[a][b] /= norm
		}
	}
	return m
}

// Sum returns the total of all matrix entries (1.0 for a gravity matrix, up
// to rounding).
func (m Matrix) Sum() float64 {
	var s float64
	for _, row := range m {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// TopPairs returns up to k ordered pairs by descending share. Large-LP
// evaluations cap the path set to the heaviest gravity pairs (see
// DESIGN.md's scale note).
func (m Matrix) TopPairs(k int) [][2]int {
	type pv struct {
		a, b int
		v    float64
	}
	var all []pv
	for a := range m {
		for b := range m[a] {
			if m[a][b] > 0 {
				all = append(all, pv{a, b, m[a][b]})
			}
		}
	}
	// Deterministic selection: sort by value desc, then indices.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			x, y := all[j-1], all[j]
			if y.v > x.v || (y.v == x.v && (y.a < x.a || (y.a == x.a && y.b < x.b))) {
				all[j-1], all[j] = y, x
			} else {
				break
			}
		}
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([][2]int, k)
	for i := 0; i < k; i++ {
		out[i] = [2]int{all[i].a, all[i].b}
	}
	return out
}

// Session is one synthetic end-to-end session (the unit the paper's traces
// count: "total traffic volume (#sessions)").
//
// Field order is part of the data-plane contract: the decision path reads
// only Tuple, Src, and Dst, so those sit first as an aligned 32-byte
// prefix. With the struct's 96-byte size, every session's decision fields
// then land inside a single cache line of the trace slice; with ID first
// half of them straddled two.
type Session struct {
	Tuple    hashing.FiveTuple
	Src, Dst int // ingress and egress node IDs
	ID       int
	Proto    Protocol
	Packets  int // both directions
	Bytes    int
}

// GenConfig parameterizes session generation.
type GenConfig struct {
	Sessions int
	Seed     int64
	Profile  Profile
	// HostsPerNode bounds the synthetic address pool behind each node so
	// per-source aggregation (scan detection) sees repeated sources.
	// Zero selects 256.
	HostsPerNode int
}

// Generate synthesizes sessions: endpoints sampled from the traffic matrix,
// protocol from the profile, packet/byte counts from the protocol template
// (geometric around the mean, minimum 2 packets).
func Generate(t *topology.Topology, m Matrix, cfg GenConfig) []Session {
	if cfg.Sessions <= 0 {
		return nil
	}
	prof := cfg.Profile
	if prof == nil {
		prof = MixedProfile()
	} else {
		prof = prof.normalize()
	}
	hosts := cfg.HostsPerNode
	if hosts == 0 {
		hosts = 256
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Cumulative distributions for pair and protocol sampling.
	type pairCDF struct {
		a, b int
		cum  float64
	}
	var pairs []pairCDF
	cum := 0.0
	for a := range m {
		for b := range m[a] {
			if m[a][b] <= 0 {
				continue
			}
			cum += m[a][b]
			pairs = append(pairs, pairCDF{a, b, cum})
		}
	}
	if len(pairs) == 0 {
		panic("traffic: empty traffic matrix")
	}
	samplePair := func() (int, int) {
		x := rng.Float64() * cum
		lo, hi := 0, len(pairs)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if pairs[mid].cum < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return pairs[lo].a, pairs[lo].b
	}
	sampleProto := func() Protocol {
		x := rng.Float64()
		acc := 0.0
		for _, e := range prof {
			acc += e.Share
			if x < acc {
				return e.Proto
			}
		}
		return prof[len(prof)-1].Proto
	}

	out := make([]Session, cfg.Sessions)
	for i := range out {
		a, b := samplePair()
		proto := sampleProto()
		srcIP := nodeHostIP(a, rng.Intn(hosts))
		dstIP := nodeHostIP(b, rng.Intn(hosts))
		pkts := 2 + geometric(rng, proto.MeanPkts-2)
		bytes := 0
		for p := 0; p < pkts; p++ {
			bytes += 20 + int(proto.MeanPayload*(0.5+rng.Float64()))
		}
		out[i] = Session{
			ID:  i,
			Src: a, Dst: b,
			Tuple: hashing.FiveTuple{
				SrcIP:   srcIP,
				DstIP:   dstIP,
				SrcPort: uint16(1024 + rng.Intn(64000)),
				DstPort: proto.Port,
				Proto:   proto.Transport,
			},
			Proto:   proto,
			Packets: pkts,
			Bytes:   bytes,
		}
	}
	return out
}

// nodeHostIP returns the synthetic address of host h behind node n
// (10.n.h_hi.h_lo).
func nodeHostIP(n, h int) uint32 {
	return 10<<24 | uint32(n&0xff)<<16 | uint32((h>>8)&0xff)<<8 | uint32(h&0xff)
}

// NodeOfIP inverts nodeHostIP: which node's prefix an address belongs to.
func NodeOfIP(ip uint32) int { return int(ip >> 16 & 0xff) }

// geometric draws a geometric-ish count with the given mean (>= 0).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Exponential with the requested mean, rounded down.
	return int(rng.ExpFloat64() * mean)
}

// PathVolumes carries the per-ordered-pair volumes the NIPS formulation
// needs. The paper's baseline is 8M flows and 40M packets per 5-minute
// interval for Internet2, scaled linearly with network size for the other
// topologies (Section 3.4).
type PathVolumes struct {
	Pairs []([2]int) // ordered (ingress, egress) pairs, parallel to Items/Pkts
	Items []float64  // flows per interval on each path
	Pkts  []float64  // packets per interval on each path
}

// Internet2BaselineFlows and Internet2BaselinePkts are the paper's stated
// per-interval baselines for the 11-node Internet2 network.
const (
	Internet2BaselineFlows = 8e6
	Internet2BaselinePkts  = 40e6
	internet2Nodes         = 11
)

// Volumes computes gravity-weighted per-path volumes, scaling the Internet2
// baseline linearly with node count. If maxPaths > 0 only the heaviest
// maxPaths gravity pairs are kept; each kept path retains its share of the
// full-network volume (the dropped tail's volume is simply not modeled), so
// per-path volumes stay physically realistic under capping.
func Volumes(t *topology.Topology, m Matrix, maxPaths int) PathVolumes {
	scale := float64(t.N()) / internet2Nodes
	totalFlows := Internet2BaselineFlows * scale
	totalPkts := Internet2BaselinePkts * scale

	var pairs [][2]int
	if maxPaths > 0 {
		pairs = m.TopPairs(maxPaths)
	} else {
		for a := range m {
			for b := range m[a] {
				if m[a][b] > 0 {
					pairs = append(pairs, [2]int{a, b})
				}
			}
		}
	}
	pv := PathVolumes{Pairs: pairs}
	for _, p := range pairs {
		share := m[p[0]][p[1]]
		pv.Items = append(pv.Items, share*totalFlows)
		pv.Pkts = append(pv.Pkts, share*totalPkts)
	}
	return pv
}

// MatchRates draws the fraction M_ik of traffic on each path matching each
// rule, i.i.d. uniform on [lo, hi) — the paper's evaluation distribution is
// U[0, 0.01].
func MatchRates(nRules, nPaths int, lo, hi float64, seed int64) [][]float64 {
	if hi < lo {
		panic(fmt.Sprintf("traffic: bad match-rate range [%v, %v)", lo, hi))
	}
	rng := rand.New(rand.NewSource(seed))
	m := make([][]float64, nRules)
	for i := range m {
		m[i] = make([]float64, nPaths)
		for k := range m[i] {
			m[i][k] = lo + rng.Float64()*(hi-lo)
		}
	}
	return m
}

// MatchDist selects the shape of the match-rate distribution. The paper
// presents uniform results and notes the others "hold for other M_ik
// distributions as well (not shown for brevity)"; these shapes let that
// claim be checked.
type MatchDist int

const (
	// DistUniform is i.i.d. U[0, high).
	DistUniform MatchDist = iota
	// DistExponential is exponential with mean high/2, truncated at high —
	// most rules match little traffic, a few match a lot.
	DistExponential
	// DistBimodal mixes a near-zero mode (90%) with a near-high mode
	// (10%) — a few hot rule/path cells dominate.
	DistBimodal
)

// String names the distribution.
func (d MatchDist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistExponential:
		return "exponential"
	case DistBimodal:
		return "bimodal"
	}
	return fmt.Sprintf("MatchDist(%d)", int(d))
}

// MatchRatesDist draws M_ik from the selected distribution with upper
// bound high.
func MatchRatesDist(dist MatchDist, nRules, nPaths int, high float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([][]float64, nRules)
	for i := range m {
		m[i] = make([]float64, nPaths)
		for k := range m[i] {
			switch dist {
			case DistExponential:
				v := rng.ExpFloat64() * high / 2
				if v >= high {
					v = high * 0.999
				}
				m[i][k] = v
			case DistBimodal:
				if rng.Float64() < 0.9 {
					m[i][k] = rng.Float64() * high / 20
				} else {
					m[i][k] = high * (0.7 + 0.3*rng.Float64())
				}
			default:
				m[i][k] = rng.Float64() * high
			}
		}
	}
	return m
}
