package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"nwdeploy/internal/obs"
)

func TestNilFleetIsNoOp(t *testing.T) {
	var f *Fleet
	f.Report(NodeStats{Node: 0})
	f.SetRegions([][]int{{0}})
	if snap := f.EndEpoch(1, 1); !reflect.DeepEqual(snap, FleetSnapshot{}) {
		t.Fatalf("nil EndEpoch = %+v, want zero", snap)
	}
	if f.Latest() != nil {
		t.Fatal("nil Latest should be nil")
	}

	var h *History
	h.Add(FleetSnapshot{})
	if h.Len() != 0 {
		t.Fatal("nil History Len != 0")
	}
	if h.Snapshots() != nil {
		t.Fatal("nil History Snapshots != nil")
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil WriteJSON = %q, want []", buf.String())
	}
}

func TestClassification(t *testing.T) {
	f := NewFleet(1, FleetOptions{})
	cases := []struct {
		name   string
		s      NodeStats
		silent int
		want   Health
	}{
		{"fresh synced", NodeStats{Epoch: 3}, 0, Healthy},
		{"lagging", NodeStats{Epoch: 2, Lag: 1}, 0, Stale},
		{"stale epochs", NodeStats{StaleEpochs: 2}, 0, Stale},
		{"shedding", NodeStats{Epoch: 3, ShedWidth: 0.25}, 0, Shedding},
		{"floor limited", NodeStats{Epoch: 3, FloorLimited: true}, 0, Shedding},
		{"shed wins over lag", NodeStats{Lag: 1, ShedWidth: 0.1}, 0, Shedding},
		{"draining report", NodeStats{Draining: true}, 0, Stale},
		{"silent one epoch", NodeStats{Epoch: 3}, 1, Dark},
		{"drained silent within grace", NodeStats{Draining: true}, 4, Stale},
		{"drained silent past grace", NodeStats{Draining: true}, 5, Dark},
	}
	for _, c := range cases {
		if got := f.classify(c.s, c.silent); got != c.want {
			t.Errorf("%s: classify = %v, want %v", c.name, got, c.want)
		}
	}

	// A larger DarkAfter keeps a silent node stale longer.
	f2 := NewFleet(1, FleetOptions{DarkAfter: 3})
	if got := f2.classify(NodeStats{}, 2); got != Stale {
		t.Errorf("DarkAfter=3, silent=2: %v, want stale", got)
	}
	if got := f2.classify(NodeStats{}, 3); got != Dark {
		t.Errorf("DarkAfter=3, silent=3: %v, want dark", got)
	}
}

func TestEndEpochSilenceAndCounts(t *testing.T) {
	f := NewFleet(3, FleetOptions{DarkAfter: 2})

	// Epoch 1: nodes 0 and 1 report, node 2 never has.
	f.Report(NodeStats{Node: 0, Epoch: 1})
	f.Report(NodeStats{Node: 1, Epoch: 1, ShedWidth: 0.5})
	snap := f.EndEpoch(1, 1)
	if snap.RunEpoch != 1 || snap.CtrlEpoch != 1 {
		t.Fatalf("snapshot epochs = %d/%d", snap.RunEpoch, snap.CtrlEpoch)
	}
	if snap.Healthy != 1 || snap.Shedding != 1 || snap.Stale != 1 || snap.Dark != 0 {
		t.Fatalf("epoch 1 counts = %+v", snap.Counts())
	}
	if snap.Nodes[2].Silent != 1 || snap.Nodes[2].Health != Stale {
		t.Fatalf("never-seen node = %+v", snap.Nodes[2])
	}

	// Epoch 2: only node 0 reports; node 2 crosses DarkAfter.
	f.Report(NodeStats{Node: 0, Epoch: 2})
	snap = f.EndEpoch(2, 2)
	if snap.Nodes[1].Silent != 1 || snap.Nodes[1].Health != Stale {
		t.Fatalf("one-epoch-silent node = %+v", snap.Nodes[1])
	}
	if snap.Nodes[2].Silent != 2 || snap.Nodes[2].Health != Dark {
		t.Fatalf("dark node = %+v", snap.Nodes[2])
	}
	if snap.Healthy != 1 || snap.Stale != 1 || snap.Dark != 1 {
		t.Fatalf("epoch 2 counts = %+v", snap.Counts())
	}

	// Duplicate reports in a round are last-write-wins.
	f.Report(NodeStats{Node: 0, Epoch: 2})
	f.Report(NodeStats{Node: 0, Epoch: 3})
	snap = f.EndEpoch(3, 3)
	if snap.Nodes[0].Epoch != 3 {
		t.Fatalf("duplicate report not last-write-wins: %+v", snap.Nodes[0])
	}

	// Out-of-range reports are dropped, not panics.
	f.Report(NodeStats{Node: -1})
	f.Report(NodeStats{Node: 99})
}

func TestRegionRollup(t *testing.T) {
	f := NewFleet(4, FleetOptions{})
	f.SetRegions([][]int{{1, 0}, {2, 3}})
	f.Report(NodeStats{Node: 0})
	f.Report(NodeStats{Node: 1, Lag: 1})
	f.Report(NodeStats{Node: 2, ShedWidth: 0.3})
	// node 3 silent -> dark (DarkAfter default 1).
	snap := f.EndEpoch(1, 1)
	if len(snap.Regions) != 2 {
		t.Fatalf("regions = %d", len(snap.Regions))
	}
	r0, r1 := snap.Regions[0], snap.Regions[1]
	if !reflect.DeepEqual(r0.Nodes, []int{0, 1}) {
		t.Fatalf("region 0 nodes not sorted: %v", r0.Nodes)
	}
	if r0.Healthy != 1 || r0.Stale != 1 {
		t.Fatalf("region 0 rollup = %+v", r0)
	}
	if r1.Shedding != 1 || r1.Dark != 1 {
		t.Fatalf("region 1 rollup = %+v", r1)
	}
}

func TestLatestReturnsCopy(t *testing.T) {
	f := NewFleet(2, FleetOptions{})
	if f.Latest() != nil {
		t.Fatal("Latest before any epoch should be nil")
	}
	f.Report(NodeStats{Node: 0})
	f.EndEpoch(1, 1)
	a := f.Latest()
	a.Nodes[0].Alerts = 999
	if b := f.Latest(); b.Nodes[0].Alerts == 999 {
		t.Fatal("Latest aliases internal state")
	}
}

func TestHealthJSONRoundTrip(t *testing.T) {
	for _, h := range []Health{Healthy, Stale, Shedding, Dark} {
		b, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + h.String() + `"`; string(b) != want {
			t.Fatalf("marshal %v = %s, want %s", h, b, want)
		}
		var back Health
		if err := json.Unmarshal(b, &back); err != nil || back != h {
			t.Fatalf("round trip %v -> %v (%v)", h, back, err)
		}
	}
	var h Health
	if err := json.Unmarshal([]byte(`"bogus"`), &h); err == nil {
		t.Fatal("unknown health should not unmarshal")
	}
}

func TestNodeStatsOmitempty(t *testing.T) {
	b, err := json.Marshal(NodeStats{Node: 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"node":3}` {
		t.Fatalf("zero-report marshal = %s, want only the node id", b)
	}
}

func TestHistoryRing(t *testing.T) {
	h := NewHistory(3)
	for e := 1; e <= 5; e++ {
		h.Add(FleetSnapshot{RunEpoch: e})
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	snaps := h.Snapshots()
	got := []int{snaps[0].RunEpoch, snaps[1].RunEpoch, snaps[2].RunEpoch}
	if !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Fatalf("ring kept %v, want oldest-first [3 4 5]", got)
	}

	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []FleetSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON output not parseable: %v", err)
	}
	if len(back) != 3 || back[0].RunEpoch != 3 {
		t.Fatalf("decoded history = %+v", back)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"cluster.epochs":  "cluster_epochs",
		"fetch-ns":        "fetch_ns",
		"ok_name:sub":     "ok_name:sub",
		"9lives":          "_9lives",
		"":                "_",
		"solve ns (p99)!": "solve_ns__p99__",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromValidates(t *testing.T) {
	r := obs.New()
	r.Counter("cluster.epochs").Add(5)
	r.Gauge("governor.shed-width").Set(0.25)
	hist := r.Histogram("fetch.ns")
	for _, v := range []int64{100, 200, 400, 800, 1600} {
		hist.Observe(v)
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cluster_epochs counter",
		"cluster_epochs 5",
		"# TYPE governor_shed_width gauge",
		"# TYPE fetch_ns summary",
		`fetch_ns{quantile="0.5"}`,
		`fetch_ns{quantile="0.99"}`,
		"fetch_ns_sum 3100",
		"fetch_ns_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
	if err := ValidateProm(strings.NewReader(out)); err != nil {
		t.Fatalf("WriteProm output does not validate: %v", err)
	}
}

func TestWriteFleetPromValidates(t *testing.T) {
	if err := WriteFleetProm(&bytes.Buffer{}, nil); err != nil {
		t.Fatalf("nil snapshot: %v", err)
	}

	f := NewFleet(3, FleetOptions{})
	f.SetRegions([][]int{{0, 1}, {2}})
	f.Report(NodeStats{Node: 0, Epoch: 2, Sessions: 120, Alerts: 3, Conns: 40})
	f.Report(NodeStats{Node: 1, Epoch: 2, ShedWidth: 0.5})
	snap := f.EndEpoch(1, 2)

	var buf bytes.Buffer
	if err := WriteFleetProm(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fleet_run_epoch 1",
		"fleet_ctrl_epoch 2",
		`fleet_nodes{state="healthy"} 1`,
		`fleet_nodes{state="shedding"} 1`,
		`fleet_nodes{state="dark"} 1`,
		`fleet_region_nodes{region="0",state="healthy"} 1`,
		`fleet_node_health{node="2",state="dark"} 1`,
		`fleet_node_sessions{node="0"} 120`,
		`fleet_node_shed_width{node="1"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteFleetProm output missing %q:\n%s", want, out)
		}
	}
	if err := ValidateProm(strings.NewReader(out)); err != nil {
		t.Fatalf("WriteFleetProm output does not validate: %v", err)
	}
}

func TestValidatePromRejects(t *testing.T) {
	bad := []string{
		"",                               // no samples
		"bad-name 1\n",                   // invalid name
		"ok {label=\"x\"\n",              // unterminated labels / missing value
		"ok{label=nope} 1\n",             // unquoted label value
		"ok 1\n# TYPE ok wat\nok 2\n",    // unknown type
		"ok\n",                           // missing value
		"ok{a=\"1\"} notanumber\n",       // bad value
		"# TYPE only a comment here 5\n", // malformed TYPE, no samples
	}
	for _, in := range bad {
		if err := ValidateProm(strings.NewReader(in)); err == nil {
			t.Errorf("ValidateProm(%q) accepted invalid input", in)
		}
	}
	if err := ValidateProm(strings.NewReader("ok{a=\"1\",b=\"2\"} 3.5\n")); err != nil {
		t.Errorf("valid line rejected: %v", err)
	}
}
