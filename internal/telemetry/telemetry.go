// Package telemetry is the controller-side fleet telemetry plane: a
// network-wide view of per-node health built from compact stats records
// that ride the existing control-plane wire exchanges.
//
// The design mirrors internal/obs and internal/trace:
//
//   - nil-is-no-op: a nil *Fleet or *History accepts every call and does
//     nothing, so call sites never branch on whether telemetry is enabled.
//   - write-only: nothing in the control or data plane ever reads fleet
//     state back to make a decision. A run with the fleet plane attached
//     produces byte-identical reports to a run without it.
//   - no extra wire traffic: NodeStats piggyback on exchanges the agent
//     was already making (an omitempty request field), so the chaos fault
//     stream sees the exact same dial sequence either way. A node that
//     cannot reach the controller is, by construction, indistinguishable
//     from a dead one — the fleet view is the controller's wire truth.
//
// Determinism: every FleetSnapshot field except WallMs is a pure function
// of the run's seeded inputs. Tests that compare snapshots across worker
// counts zero WallMs first.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeStats is one node's compact self-report, collected by the cluster
// runtime at the end of an epoch and delivered to the controller on the
// node's next wire exchange. All fields other than Node are omitempty so
// the zero report marshals small and v1 golden request lines stay
// byte-stable when no stats are attached at all.
type NodeStats struct {
	Node int `json:"node"`
	// Epoch is the manifest generation installed on the node when the
	// report was taken.
	Epoch uint64 `json:"epoch,omitempty"`
	// Lag is how many generations behind the controller the node was at
	// collection time (0 for a node that synced this epoch).
	Lag uint64 `json:"lag,omitempty"`
	// StaleEpochs counts consecutive epochs the node has failed to sync.
	StaleEpochs int `json:"stale_epochs,omitempty"`
	// Fetch counters for the epoch the report covers.
	FetchErrors   int `json:"fetch_errors,omitempty"`
	FetchTimeouts int `json:"fetch_timeouts,omitempty"`
	FetchRetries  int `json:"fetch_retries,omitempty"`
	// ShedWidth is the total hash-range width the governor has shed on
	// this node (0 when the node analyzes its full assignment).
	ShedWidth float64 `json:"shed_width,omitempty"`
	// FloorLimited reports that the governor wanted to shed more but was
	// pinned at the r=1 coverage floor.
	FloorLimited bool `json:"floor_limited,omitempty"`
	// Engine-side load for the epoch: sessions ingested, alerts raised,
	// and live conn-table size.
	Sessions int `json:"sessions,omitempty"`
	Alerts   int `json:"alerts,omitempty"`
	Conns    int `json:"conns,omitempty"`
	// Draining marks a deliberate maintenance drain: the node's farewell
	// report before it goes silent, so the fleet classifies the silence
	// as stale (planned) rather than dark (failed).
	Draining bool `json:"draining,omitempty"`
}

// Health is the fleet's per-node classification.
type Health int

const (
	// Healthy: reported this epoch, synced, analyzing its full share.
	Healthy Health = iota
	// Stale: lagging the controller, failing syncs within grace, or
	// silent but known to be draining.
	Stale
	// Shedding: reporting and synced but the governor has shed load
	// (or is pinned at the coverage floor).
	Shedding
	// Dark: silent past the dark threshold with no drain farewell —
	// crashed, partitioned, or gone.
	Dark
)

var healthNames = [...]string{"healthy", "stale", "shedding", "dark"}

func (h Health) String() string {
	if h < 0 || int(h) >= len(healthNames) {
		return fmt.Sprintf("health(%d)", int(h))
	}
	return healthNames[h]
}

// MarshalJSON encodes the health state as its lowercase name so snapshots
// read naturally over HTTP and in goldens.
func (h Health) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON accepts the lowercase names emitted by MarshalJSON.
func (h *Health) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	for i, name := range healthNames {
		if s == name {
			*h = Health(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown health %q", s)
}

// NodeView is one node's row in a FleetSnapshot: the last stats the
// controller heard plus the fleet's classification.
type NodeView struct {
	NodeStats
	Health Health `json:"health"`
	// Silent counts consecutive completed epochs with no report from the
	// node (0 = reported this epoch).
	Silent int `json:"silent,omitempty"`
}

// RegionHealth rolls a region's nodes up to counts per health state.
type RegionHealth struct {
	Region   int   `json:"region"`
	Nodes    []int `json:"nodes"`
	Healthy  int   `json:"healthy"`
	Stale    int   `json:"stale"`
	Shedding int   `json:"shedding"`
	Dark     int   `json:"dark"`
}

// FleetSnapshot is the fleet's state at the end of one run epoch.
type FleetSnapshot struct {
	// RunEpoch is the cluster runtime's 1-based epoch counter.
	RunEpoch int `json:"run_epoch"`
	// CtrlEpoch is the controller's manifest generation at sampling time.
	CtrlEpoch uint64 `json:"ctrl_epoch"`
	// WallMs is the only wall-clock field in the snapshot; determinism
	// comparisons must zero it.
	WallMs int64 `json:"wall_ms,omitempty"`

	Nodes []NodeView `json:"nodes"`

	Healthy  int `json:"healthy"`
	Stale    int `json:"stale"`
	Shedding int `json:"shedding"`
	Dark     int `json:"dark"`

	Regions []RegionHealth `json:"regions,omitempty"`
}

// Counts returns the per-state totals as a map keyed by state name.
func (s *FleetSnapshot) Counts() map[string]int {
	if s == nil {
		return nil
	}
	return map[string]int{
		"healthy":  s.Healthy,
		"stale":    s.Stale,
		"shedding": s.Shedding,
		"dark":     s.Dark,
	}
}

// FleetOptions tune the health state machine.
type FleetOptions struct {
	// DarkAfter is how many consecutive silent epochs turn a node dark.
	// 0 means the default of 1: miss one full epoch, go dark.
	DarkAfter int
	// DrainGrace is how many silent epochs a draining farewell covers
	// before even a drained node is considered dark. 0 means 4.
	DrainGrace int
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.DarkAfter <= 0 {
		o.DarkAfter = 1
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 4
	}
	return o
}

// Fleet aggregates NodeStats reports into per-epoch snapshots. The
// controller feeds it from the wire (Report); the cluster runtime closes
// each epoch (EndEpoch). All methods are safe on a nil receiver and safe
// for concurrent use.
type Fleet struct {
	mu   sync.Mutex
	n    int
	opts FleetOptions

	last      []NodeStats // last report heard per node
	seenRound []int       // round the last report arrived in; -1 = never
	round     int         // current epoch round, bumped by EndEpoch

	regions  [][]int // optional region -> node ids
	regionOf []int   // node -> region, -1 = unassigned

	latest *FleetSnapshot
}

// NewFleet builds a fleet tracker for nodes 0..n-1.
func NewFleet(n int, opts FleetOptions) *Fleet {
	f := &Fleet{n: n, opts: opts.withDefaults()}
	f.last = make([]NodeStats, n)
	f.seenRound = make([]int, n)
	f.regionOf = make([]int, n)
	for i := range f.last {
		f.last[i] = NodeStats{Node: i}
		f.seenRound[i] = -1
		f.regionOf[i] = -1
	}
	return f
}

// Report folds one node's stats into the current round. Duplicate reports
// within a round are last-write-wins, which keeps retried exchanges
// idempotent. Out-of-range nodes are dropped.
func (f *Fleet) Report(s NodeStats) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s.Node < 0 || s.Node >= f.n {
		return
	}
	f.last[s.Node] = s
	f.seenRound[s.Node] = f.round
}

// SetRegions installs a region partition (region index -> node ids) so
// snapshots carry per-region rollups. Nodes not listed stay unassigned.
func (f *Fleet) SetRegions(regions [][]int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.regions = make([][]int, len(regions))
	for i := range f.regionOf {
		f.regionOf[i] = -1
	}
	for r, nodes := range regions {
		cp := make([]int, len(nodes))
		copy(cp, nodes)
		sort.Ints(cp)
		f.regions[r] = cp
		for _, j := range cp {
			if j >= 0 && j < f.n {
				f.regionOf[j] = r
			}
		}
	}
}

// classify applies the health state machine to one node given how many
// completed rounds it has been silent.
func (f *Fleet) classify(s NodeStats, silent int) Health {
	if silent == 0 {
		switch {
		case s.Draining:
			return Stale
		case s.ShedWidth > 0 || s.FloorLimited:
			return Shedding
		case s.Lag > 0 || s.StaleEpochs > 0:
			return Stale
		default:
			return Healthy
		}
	}
	// Silent this round. A drain farewell buys DrainGrace epochs of
	// "stale"; anything else goes dark at DarkAfter.
	if s.Draining && silent <= f.opts.DrainGrace {
		return Stale
	}
	if silent < f.opts.DarkAfter {
		return Stale
	}
	return Dark
}

// EndEpoch closes the current round: it classifies every node, builds the
// snapshot for runEpoch at controller generation ctrlEpoch, and starts the
// next round. Returns the zero snapshot on a nil fleet.
func (f *Fleet) EndEpoch(runEpoch int, ctrlEpoch uint64) FleetSnapshot {
	if f == nil {
		return FleetSnapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	snap := FleetSnapshot{
		RunEpoch:  runEpoch,
		CtrlEpoch: ctrlEpoch,
		WallMs:    time.Now().UnixMilli(),
		Nodes:     make([]NodeView, f.n),
	}
	for j := 0; j < f.n; j++ {
		silent := 0
		if f.seenRound[j] < f.round {
			if f.seenRound[j] < 0 {
				silent = f.round + 1
			} else {
				silent = f.round - f.seenRound[j]
			}
		}
		v := NodeView{NodeStats: f.last[j], Silent: silent}
		v.Health = f.classify(f.last[j], silent)
		snap.Nodes[j] = v
		switch v.Health {
		case Healthy:
			snap.Healthy++
		case Stale:
			snap.Stale++
		case Shedding:
			snap.Shedding++
		case Dark:
			snap.Dark++
		}
	}
	if len(f.regions) > 0 {
		snap.Regions = make([]RegionHealth, len(f.regions))
		for r, nodes := range f.regions {
			rh := RegionHealth{Region: r, Nodes: nodes}
			for _, j := range nodes {
				if j < 0 || j >= f.n {
					continue
				}
				switch snap.Nodes[j].Health {
				case Healthy:
					rh.Healthy++
				case Stale:
					rh.Stale++
				case Shedding:
					rh.Shedding++
				case Dark:
					rh.Dark++
				}
			}
			snap.Regions[r] = rh
		}
	}
	f.round++
	cp := snap
	f.latest = &cp
	return snap
}

// Latest returns a copy of the most recent snapshot, or nil if no epoch
// has closed yet (or the fleet itself is nil).
func (f *Fleet) Latest() *FleetSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.latest == nil {
		return nil
	}
	cp := *f.latest
	cp.Nodes = append([]NodeView(nil), f.latest.Nodes...)
	cp.Regions = append([]RegionHealth(nil), f.latest.Regions...)
	return &cp
}
