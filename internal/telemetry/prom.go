package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"nwdeploy/internal/obs"
)

// promQuantiles are the summary quantiles emitted for every histogram.
var promQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.9", 0.9},
	{"0.99", 0.99},
}

// PromName sanitizes a metric name into the Prometheus exposition
// alphabet [a-zA-Z0-9_:], mapping every other byte to '_'. Dotted obs
// names like "cluster.epochs" become "cluster_epochs".
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WriteProm renders an obs snapshot in the Prometheus text exposition
// format: counters and gauges as their own types, histograms as summaries
// with p50/p90/p99 quantiles (estimated from the power-of-two buckets,
// <=2x bucket error) plus _sum and _count. Families are emitted in
// name-sorted order so output is byte-stable for a given snapshot.
func WriteProm(w io.Writer, snap obs.Snapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(snap.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		for _, pq := range promQuantiles {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %d\n", pn, pq.label, h.Quantile(pq.q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteFleetProm renders a fleet snapshot in the Prometheus text format:
// fleet-wide totals, per-region rollups, and one labeled series per node
// for the load-bearing per-node fields. A nil snapshot writes nothing.
func WriteFleetProm(w io.Writer, snap *FleetSnapshot) error {
	if snap == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w,
		"# TYPE fleet_run_epoch gauge\nfleet_run_epoch %d\n"+
			"# TYPE fleet_ctrl_epoch gauge\nfleet_ctrl_epoch %d\n",
		snap.RunEpoch, snap.CtrlEpoch); err != nil {
		return err
	}
	states := []struct {
		name string
		n    int
	}{
		{"healthy", snap.Healthy},
		{"stale", snap.Stale},
		{"shedding", snap.Shedding},
		{"dark", snap.Dark},
	}
	if _, err := fmt.Fprintf(w, "# TYPE fleet_nodes gauge\n"); err != nil {
		return err
	}
	for _, st := range states {
		if _, err := fmt.Fprintf(w, "fleet_nodes{state=%q} %d\n", st.name, st.n); err != nil {
			return err
		}
	}
	for _, rh := range snap.Regions {
		for _, st := range []struct {
			name string
			n    int
		}{{"healthy", rh.Healthy}, {"stale", rh.Stale}, {"shedding", rh.Shedding}, {"dark", rh.Dark}} {
			if _, err := fmt.Fprintf(w, "fleet_region_nodes{region=\"%d\",state=%q} %d\n", rh.Region, st.name, st.n); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE fleet_node_health gauge\n"); err != nil {
		return err
	}
	for _, v := range snap.Nodes {
		if _, err := fmt.Fprintf(w, "fleet_node_health{node=\"%d\",state=%q} 1\n", v.Node, v.Health.String()); err != nil {
			return err
		}
	}
	perNode := []struct {
		name string
		get  func(NodeView) string
	}{
		{"fleet_node_epoch", func(v NodeView) string { return strconv.FormatUint(v.Epoch, 10) }},
		{"fleet_node_lag", func(v NodeView) string { return strconv.FormatUint(v.Lag, 10) }},
		{"fleet_node_shed_width", func(v NodeView) string { return promFloat(v.ShedWidth) }},
		{"fleet_node_sessions", func(v NodeView) string { return strconv.Itoa(v.Sessions) }},
		{"fleet_node_alerts", func(v NodeView) string { return strconv.Itoa(v.Alerts) }},
		{"fleet_node_conns", func(v NodeView) string { return strconv.Itoa(v.Conns) }},
		{"fleet_node_silent_epochs", func(v NodeView) string { return strconv.Itoa(v.Silent) }},
	}
	for _, m := range perNode {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", m.name); err != nil {
			return err
		}
		for _, v := range snap.Nodes {
			if _, err := fmt.Fprintf(w, "%s{node=\"%d\"} %s\n", m.name, v.Node, m.get(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ValidateProm checks a Prometheus text exposition for structural
// validity: every non-comment line must be `name[{labels}] value`, names
// must use the exposition alphabet, label bodies must be balanced
// key="value" pairs, values must parse as floats, and # TYPE comments
// must name a known metric type. It returns the first violation found.
func ValidateProm(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	metrics := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("prom line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("prom line %d: unknown metric type %q", lineNo, fields[3])
				}
			}
			continue
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if PromName(name) != name || name == "" {
			return fmt.Errorf("prom line %d: invalid metric name %q", lineNo, name)
		}
		rest = strings.TrimSpace(rest)
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("prom line %d: unterminated label set", lineNo)
			}
			body := rest[1:end]
			if body != "" {
				for _, pair := range strings.Split(body, ",") {
					k, v, ok := strings.Cut(pair, "=")
					if !ok || PromName(k) != k || k == "" {
						return fmt.Errorf("prom line %d: malformed label pair %q", lineNo, pair)
					}
					if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
						return fmt.Errorf("prom line %d: unquoted label value %q", lineNo, pair)
					}
				}
			}
			rest = strings.TrimSpace(rest[end+1:])
		}
		if rest == "" {
			return fmt.Errorf("prom line %d: missing value", lineNo)
		}
		if _, err := strconv.ParseFloat(strings.Fields(rest)[0], 64); err != nil {
			return fmt.Errorf("prom line %d: bad value %q: %v", lineNo, rest, err)
		}
		metrics++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if metrics == 0 {
		return fmt.Errorf("prom exposition: no metric samples")
	}
	return nil
}
