package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// History is a fixed-capacity ring of fleet snapshots, one per epoch.
// Like Fleet it is nil-safe and write-only: the runtime appends one
// snapshot per epoch and readers (HTTP handlers, cmd/fleetstat) render
// copies. When the ring is full the oldest snapshot falls off.
type History struct {
	mu    sync.Mutex
	ring  []FleetSnapshot
	head  int // index of the oldest entry
	count int
}

// NewHistory builds a history ring holding up to capacity snapshots.
// Capacity <= 0 defaults to 64.
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		capacity = 64
	}
	return &History{ring: make([]FleetSnapshot, capacity)}
}

// Add appends a snapshot, evicting the oldest when full. No-op on nil.
func (h *History) Add(s FleetSnapshot) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count < len(h.ring) {
		h.ring[(h.head+h.count)%len(h.ring)] = s
		h.count++
		return
	}
	h.ring[h.head] = s
	h.head = (h.head + 1) % len(h.ring)
}

// Len reports how many snapshots are currently retained.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Snapshots returns the retained snapshots oldest-first.
func (h *History) Snapshots() []FleetSnapshot {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]FleetSnapshot, h.count)
	for i := 0; i < h.count; i++ {
		out[i] = h.ring[(h.head+i)%len(h.ring)]
	}
	return out
}

// WriteJSON writes the retained history oldest-first as one indented JSON
// array. The encoding is stable: snapshots are emitted in insertion order
// and every map-free struct field marshals in declaration order.
func (h *History) WriteJSON(w io.Writer) error {
	snaps := h.Snapshots()
	if snaps == nil {
		snaps = []FleetSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}
