package chaos

import "sort"

// Planned maintenance: rolling node drains. A drain differs from a crash
// in one operational respect — the process keeps its in-memory manifest,
// so a drained node rejoins instantly when its window ends, where a
// crashed node must re-fetch from the controller. The drain plan is a pure
// function of its config (no randomness at all: maintenance is scheduled,
// not drawn), which keeps composed scenarios bit-for-bit reproducible.

// DrainConfig parameterizes a rolling maintenance wave over the fleet.
type DrainConfig struct {
	// Epochs and Nodes size the plan.
	Epochs, Nodes int
	// Group is how many nodes drain together per window (0 selects 1).
	// Keep it at or below redundancy-1 to stay inside the paper's
	// Section 2.5 guarantee; above it probes degradation.
	Group int
	// Dwell is how many epochs each group stays drained (0 selects 1).
	Dwell int
	// Start is the first epoch of the wave (earlier epochs drain nothing).
	Start int
	// Gap is how many idle epochs separate consecutive windows (settle
	// time for re-synced manifests before the next group goes down).
	Gap int
}

func (c DrainConfig) withDefaults() DrainConfig {
	if c.Group <= 0 {
		c.Group = 1
	}
	if c.Dwell <= 0 {
		c.Dwell = 1
	}
	if c.Gap < 0 {
		c.Gap = 0
	}
	if c.Start < 0 {
		c.Start = 0
	}
	return c
}

// DrainPlan is an epoch-indexed maintenance schedule: Drains[e] lists the
// nodes drained during epoch e, ascending.
type DrainPlan struct {
	Drains [][]int
}

// Drained reports whether node j is drained in epoch e.
func (p *DrainPlan) Drained(e, j int) bool {
	if e < 0 || e >= len(p.Drains) {
		return false
	}
	for _, d := range p.Drains[e] {
		if d == j {
			return true
		}
	}
	return false
}

// RollingDrains builds the rolling-wave plan: starting at Start, node
// groups [0..Group), [Group..2*Group), ... each hold down for Dwell
// epochs, separated by Gap idle epochs, wrapping around the fleet until
// the plan's epochs run out. Every node is visited before any node is
// drained twice.
func RollingDrains(cfg DrainConfig) *DrainPlan {
	cfg = cfg.withDefaults()
	p := &DrainPlan{Drains: make([][]int, cfg.Epochs)}
	if cfg.Nodes <= 0 {
		return p
	}
	window := cfg.Dwell + cfg.Gap
	for e := cfg.Start; e < cfg.Epochs; e++ {
		rel := e - cfg.Start
		if rel%window >= cfg.Dwell {
			continue // gap epoch: everything is up
		}
		wave := rel / window
		first := (wave * cfg.Group) % cfg.Nodes
		for i := 0; i < cfg.Group && i < cfg.Nodes; i++ {
			p.Drains[e] = append(p.Drains[e], (first+i)%cfg.Nodes)
		}
		sort.Ints(p.Drains[e])
	}
	return p
}
