// Package chaos is a deterministic, seeded fault injector for the
// control-plane network: wrapped dialers that drop, delay, or black-hole
// connections on a seeded schedule, a gated listener modeling controller
// outage windows, and epoch-indexed node crash/restart schedules. Every
// decision derives from a single SplitMix64 seed via internal/parallel's
// seed splitting, so a chaos run replays bit-for-bit from one integer.
//
// # Determinism contract
//
// Fault decisions are drawn from per-consumer Streams, each seeded by
// splitting the injector seed with the consumer's identity (one stream
// per node agent). A stream's n-th draw is a pure function of (seed,
// consumer, n); since each agent draws only from its own stream, the
// fault sequence every agent observes is independent of goroutine
// scheduling. This is also why per-connection faults are injected on the
// dial side rather than in the listener: concurrent agents race into a
// shared accept queue, so accept-order-keyed draws would vary run to run.
// The listener-side Gate is deterministic precisely because it is not
// draw-keyed — it is opened and closed at epoch boundaries by the
// cluster runtime, affecting every connection in the window equally.
package chaos

import (
	"errors"
	"io"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"nwdeploy/internal/parallel"
)

// Fault is one injected connection-level failure mode.
type Fault int

const (
	// FaultNone lets the connection proceed untouched.
	FaultNone Fault = iota
	// FaultError fails the dial immediately (connection refused / link
	// down): the cheap failure an agent can distinguish fast.
	FaultError
	// FaultBlackhole connects but never delivers a response, so the
	// caller's I/O deadline expires: the expensive failure mode that
	// exercises per-attempt timeouts.
	FaultBlackhole
	// FaultDelay adds latency before the dial proceeds normally.
	FaultDelay
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultBlackhole:
		return "blackhole"
	case FaultDelay:
		return "delay"
	}
	return "unknown"
}

// ErrInjected is the error returned by a FaultError dial.
var ErrInjected = errors.New("chaos: injected connection error")

// NetworkFaults sets the per-connection fault mix. Probabilities are
// evaluated in order (drop, blackhole, delay) against one uniform draw,
// so their sum should not exceed 1.
type NetworkFaults struct {
	// DropProb is the probability a dial fails immediately with
	// ErrInjected.
	DropProb float64
	// BlackholeProb is the probability a dial connects to a black hole
	// that never answers (the caller times out).
	BlackholeProb float64
	// DelayProb is the probability a dial is delayed by Delay before
	// proceeding normally.
	DelayProb float64
	// Delay is the added latency for FaultDelay (0 selects 2ms). It
	// affects wall time only, never outcomes.
	Delay time.Duration
}

// Uniform maps (seed, index) to a uniform [0, 1) float via the SplitMix64
// finalizer — the single primitive every chaos decision reduces to.
func Uniform(seed, index int64) float64 {
	return float64(uint64(parallel.SplitSeed(seed, index))>>11) / (1 << 53)
}

// Injector derives per-consumer fault streams from one seed.
type Injector struct {
	seed   int64
	faults NetworkFaults
}

// NewInjector builds an injector whose streams all use the given fault
// mix.
func NewInjector(seed int64, faults NetworkFaults) *Injector {
	return &Injector{seed: seed, faults: faults}
}

// Stream returns the deterministic fault stream for consumer id. Streams
// for distinct ids are statistically independent; calling Stream twice
// with the same id yields streams that replay the same sequence only if
// their draws are not interleaved, so each consumer should hold one.
func (in *Injector) Stream(id int) *Stream {
	return &Stream{seed: parallel.SplitSeed(in.seed, int64(id)), faults: in.faults}
}

// Stream is one consumer's fault sequence. The n-th call to Next returns
// a pure function of (injector seed, consumer id, n); the counter is
// atomic only so the race detector tolerates a consumer handing its
// stream between goroutines — concurrent draws from one stream would be
// schedule-dependent and are not part of the determinism contract.
type Stream struct {
	seed   int64
	faults NetworkFaults
	n      atomic.Int64
}

// Next draws the stream's next fault decision.
func (s *Stream) Next() Fault {
	k := s.n.Add(1) - 1
	u := Uniform(s.seed, k)
	f := s.faults
	switch {
	case u < f.DropProb:
		return FaultError
	case u < f.DropProb+f.BlackholeProb:
		return FaultBlackhole
	case u < f.DropProb+f.BlackholeProb+f.DelayProb:
		return FaultDelay
	}
	return FaultNone
}

// Draws reports how many decisions the stream has produced.
func (s *Stream) Draws() int64 { return s.n.Load() }

// DialFunc matches net.DialTimeout's shape — the seam both
// control.AgentOptions and this package's Dialer plug into.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// Dialer interposes a fault stream in front of a real dial function. One
// fault decision is drawn per dial attempt.
type Dialer struct {
	// Stream supplies the per-attempt fault decisions.
	Stream *Stream
	// Next performs the real dial when the attempt survives injection
	// (nil selects net.DialTimeout).
	Next DialFunc
}

// Dial draws the next fault and applies it: FaultError fails without
// touching the network, FaultBlackhole returns a connection that
// swallows writes and never answers reads (the caller's deadline
// expires), FaultDelay sleeps before dialing normally.
func (d *Dialer) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	next := d.Next
	if next == nil {
		next = net.DialTimeout
	}
	switch d.Stream.Next() {
	case FaultError:
		return nil, &net.OpError{Op: "dial", Net: network, Err: ErrInjected}
	case FaultBlackhole:
		client, server := net.Pipe()
		go func() {
			// Swallow the request so the client's writes complete; the
			// response never comes, so its read deadline fires.
			_, _ = io.Copy(io.Discard, server)
			_ = server.Close()
		}()
		return client, nil
	case FaultDelay:
		delay := d.Stream.faults.Delay
		if delay <= 0 {
			delay = 2 * time.Millisecond
		}
		time.Sleep(delay)
	}
	return next(network, addr, timeout)
}

// Gate wraps a listener with an on/off switch modeling controller outage
// windows: while closed, accepted connections are dropped immediately,
// so peers see their exchange fail exactly as if the process behind the
// port had crashed (the address stays bound, which keeps ports stable
// across simulated restarts). Gate implements net.Listener.
type Gate struct {
	ln   net.Listener
	open atomic.Bool
}

// NewGate wraps ln, initially open.
func NewGate(ln net.Listener) *Gate {
	g := &Gate{ln: ln}
	g.open.Store(true)
	return g
}

// SetOpen opens (true) or closes (false) the gate.
func (g *Gate) SetOpen(open bool) { g.open.Store(open) }

// IsOpen reports the gate's current state.
func (g *Gate) IsOpen() bool { return g.open.Load() }

// Accept returns the next connection that arrives while the gate is
// open; connections arriving while closed are dropped on the floor.
func (g *Gate) Accept() (net.Conn, error) {
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return nil, err
		}
		if g.open.Load() {
			return conn, nil
		}
		_ = conn.Close()
	}
}

// Close closes the underlying listener.
func (g *Gate) Close() error { return g.ln.Close() }

// Addr returns the underlying listener's address.
func (g *Gate) Addr() net.Addr { return g.ln.Addr() }

// EpochFaults is one epoch's environment: which nodes are crashed for
// the whole epoch and whether the controller is unreachable.
type EpochFaults struct {
	// DownNodes lists crashed nodes, ascending. A crashed node loses its
	// in-memory manifest state and must re-fetch after restart.
	DownNodes []int
	// ControllerDown closes the controller's gate for the epoch.
	ControllerDown bool
}

// Down reports whether node j is crashed this epoch.
func (f EpochFaults) Down(j int) bool {
	for _, d := range f.DownNodes {
		if d == j {
			return true
		}
	}
	return false
}

// Schedule is a full chaos run's epoch-indexed fault plan.
type Schedule struct {
	Seed   int64
	Epochs []EpochFaults
}

// ScheduleConfig parameterizes BuildSchedule.
type ScheduleConfig struct {
	// Epochs and Nodes size the schedule.
	Epochs, Nodes int
	// Seed makes the schedule reproducible.
	Seed int64
	// NodeFailProb is the per-(node, epoch) crash probability.
	NodeFailProb float64
	// MaxDown caps concurrently crashed nodes per epoch (0 = no cap);
	// set it to the provisioned redundancy minus one to stay within the
	// paper's Section 2.5 guarantee, or above it to probe degradation.
	MaxDown int
	// ControllerOutageProb is the per-epoch probability the controller
	// is unreachable.
	ControllerOutageProb float64
}

// BuildSchedule draws a deterministic fault schedule: the same config
// always yields the same schedule, independent of call site or timing.
func BuildSchedule(cfg ScheduleConfig) *Schedule {
	s := &Schedule{Seed: cfg.Seed, Epochs: make([]EpochFaults, cfg.Epochs)}
	for e := 0; e < cfg.Epochs; e++ {
		eseed := parallel.SplitSeed(cfg.Seed, int64(e))
		f := &s.Epochs[e]
		for j := 0; j < cfg.Nodes; j++ {
			if Uniform(eseed, int64(j)) >= cfg.NodeFailProb {
				continue
			}
			if cfg.MaxDown > 0 && len(f.DownNodes) >= cfg.MaxDown {
				continue
			}
			f.DownNodes = append(f.DownNodes, j)
		}
		sort.Ints(f.DownNodes)
		f.ControllerDown = Uniform(eseed, int64(cfg.Nodes)) < cfg.ControllerOutageProb
	}
	return s
}
