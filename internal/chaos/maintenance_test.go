package chaos

import (
	"reflect"
	"testing"
)

func TestRollingDrainsCoversFleetOnceBeforeRepeat(t *testing.T) {
	cfg := DrainConfig{Epochs: 20, Nodes: 5, Group: 1, Dwell: 2, Gap: 1}
	p := RollingDrains(cfg)
	seen := map[int]int{}
	for e, ds := range p.Drains {
		if len(ds) > cfg.Group {
			t.Fatalf("epoch %d drains %d nodes, group is %d", e, len(ds), cfg.Group)
		}
		for _, j := range ds {
			seen[j]++
		}
	}
	// 20 epochs / (dwell 2 + gap 1) = 6 full windows + 2 epochs: nodes 0-4
	// each drained once before node 0 comes around again.
	for j := 0; j < cfg.Nodes; j++ {
		if seen[j] == 0 {
			t.Fatalf("node %d never drained across the wave", j)
		}
	}
	if seen[0] < 2 {
		t.Fatal("wave never wrapped around the fleet")
	}
	// Gap epochs drain nothing.
	if len(p.Drains[2]) != 0 {
		t.Fatalf("gap epoch 2 drains %v", p.Drains[2])
	}
	// Pure function: identical config, identical plan.
	if !reflect.DeepEqual(p, RollingDrains(cfg)) {
		t.Fatal("RollingDrains is not a pure function of its config")
	}
}

func TestRollingDrainsGroupAndStart(t *testing.T) {
	p := RollingDrains(DrainConfig{Epochs: 8, Nodes: 6, Group: 2, Dwell: 1, Start: 3})
	for e := 0; e < 3; e++ {
		if len(p.Drains[e]) != 0 {
			t.Fatalf("epoch %d before Start drains %v", e, p.Drains[e])
		}
	}
	if want := []int{0, 1}; !reflect.DeepEqual(p.Drains[3], want) {
		t.Fatalf("first window drains %v, want %v", p.Drains[3], want)
	}
	if want := []int{2, 3}; !reflect.DeepEqual(p.Drains[4], want) {
		t.Fatalf("second window drains %v, want %v", p.Drains[4], want)
	}
	if !p.Drained(3, 1) || p.Drained(3, 2) || p.Drained(99, 0) {
		t.Fatal("Drained predicate disagrees with the plan")
	}
}

func TestRollingDrainsEdgeConfigs(t *testing.T) {
	// Zero nodes: empty plan, no panic.
	p := RollingDrains(DrainConfig{Epochs: 4})
	for e, ds := range p.Drains {
		if len(ds) != 0 {
			t.Fatalf("zero-node plan drains %v at epoch %d", ds, e)
		}
	}
	// Group larger than the fleet clamps to the fleet without duplicates.
	p = RollingDrains(DrainConfig{Epochs: 2, Nodes: 3, Group: 5})
	if want := []int{0, 1, 2}; !reflect.DeepEqual(p.Drains[0], want) {
		t.Fatalf("oversized group drains %v, want %v", p.Drains[0], want)
	}
}
