package chaos

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"
)

// Streams must replay identically for the same (seed, id) and diverge
// across ids — the property the cluster's per-agent determinism rests on.
func TestStreamDeterministicPerID(t *testing.T) {
	in := NewInjector(42, NetworkFaults{DropProb: 0.3, BlackholeProb: 0.2, DelayProb: 0.2})
	a1, a2 := in.Stream(3), in.Stream(3)
	b := in.Stream(4)
	var seqA1, seqA2, seqB []Fault
	for i := 0; i < 200; i++ {
		seqA1 = append(seqA1, a1.Next())
		seqA2 = append(seqA2, a2.Next())
		seqB = append(seqB, b.Next())
	}
	if !reflect.DeepEqual(seqA1, seqA2) {
		t.Fatal("same (seed, id) produced different fault sequences")
	}
	if reflect.DeepEqual(seqA1, seqB) {
		t.Fatal("distinct ids produced identical fault sequences")
	}
	if a1.Draws() != 200 {
		t.Fatalf("Draws() = %d, want 200", a1.Draws())
	}
}

func TestStreamFaultMixMatchesProbabilities(t *testing.T) {
	s := NewInjector(7, NetworkFaults{DropProb: 0.5}).Stream(0)
	drops := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if s.Next() == FaultError {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop fraction %v far from configured 0.5", frac)
	}
	// Zero faults: everything passes.
	clean := NewInjector(7, NetworkFaults{}).Stream(0)
	for i := 0; i < 100; i++ {
		if f := clean.Next(); f != FaultNone {
			t.Fatalf("fault %v from a zero-probability mix", f)
		}
	}
}

func TestDialerInjectsErrors(t *testing.T) {
	d := &Dialer{Stream: NewInjector(1, NetworkFaults{DropProb: 1}).Stream(0)}
	if _, err := d.Dial("tcp", "127.0.0.1:1", time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// A black-holed dial must connect, accept the request bytes, and then let
// the caller's read deadline expire with a timeout error — the failure
// mode that exercises per-attempt RPC timeouts.
func TestDialerBlackholeTimesOut(t *testing.T) {
	d := &Dialer{Stream: NewInjector(1, NetworkFaults{BlackholeProb: 1}).Stream(0)}
	conn, err := d.Dial("tcp", "127.0.0.1:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("{\"op\":\"epoch\"}\n")); err != nil {
		t.Fatalf("write into black hole: %v", err)
	}
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read err = %v, want a net timeout", err)
	}
}

func TestGateDropsWhileClosed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGate(ln)
	defer g.Close()

	// Echo one byte back per accepted connection.
	go func() {
		for {
			c, err := g.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				if _, err := c.Read(buf); err == nil {
					_, _ = c.Write(buf)
				}
			}(c)
		}
	}()

	exchange := func() error {
		conn, err := net.DialTimeout("tcp", g.Addr().String(), time.Second)
		if err != nil {
			return err
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(500 * time.Millisecond))
		if _, err := conn.Write([]byte("x")); err != nil {
			return err
		}
		_, err = conn.Read(make([]byte, 1))
		return err
	}

	if err := exchange(); err != nil {
		t.Fatalf("exchange through open gate: %v", err)
	}
	g.SetOpen(false)
	if g.IsOpen() {
		t.Fatal("gate reports open after SetOpen(false)")
	}
	if err := exchange(); err == nil {
		t.Fatal("exchange succeeded through closed gate")
	}
	g.SetOpen(true)
	if err := exchange(); err != nil {
		t.Fatalf("exchange after reopening: %v", err)
	}
}

func TestBuildScheduleDeterministicAndCapped(t *testing.T) {
	cfg := ScheduleConfig{
		Epochs: 50, Nodes: 11, Seed: 99,
		NodeFailProb: 0.3, MaxDown: 2, ControllerOutageProb: 0.2,
	}
	s1, s2 := BuildSchedule(cfg), BuildSchedule(cfg)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same config produced different schedules")
	}
	sawDown, sawOutage := false, false
	for _, e := range s1.Epochs {
		if len(e.DownNodes) > cfg.MaxDown {
			t.Fatalf("epoch has %d down nodes, cap %d", len(e.DownNodes), cfg.MaxDown)
		}
		if len(e.DownNodes) > 0 {
			sawDown = true
			if e.Down(e.DownNodes[0]) != true || e.Down(-1) {
				t.Fatal("Down membership check wrong")
			}
		}
		if e.ControllerDown {
			sawOutage = true
		}
	}
	if !sawDown || !sawOutage {
		t.Fatalf("schedule exercised no faults (down=%v outage=%v); seed choice vacuous", sawDown, sawOutage)
	}
	// A different seed must yield a different schedule.
	other := cfg
	other.Seed = 100
	if reflect.DeepEqual(BuildSchedule(cfg), BuildSchedule(other)) {
		t.Fatal("different seeds produced identical schedules")
	}
}
