package online

import (
	"math"
	"testing"

	"nwdeploy/internal/nips"
)

func advInstance(t *testing.T) *nips.Instance {
	t.Helper()
	return onlineInstance(t, 4, 8)
}

func TestUniformAdversaryMatchesRunSetting(t *testing.T) {
	inst := advInstance(t)
	adv := &UniformAdversary{Rules: 4, Paths: len(inst.Paths), High: 0.01, Seed: 44}
	res, err := RunVsAdversary(inst, adv, RunConfig{Epochs: 60, SampleEvery: 20, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Name() != "uniform" {
		t.Fatal("name")
	}
	final := res.Series[len(res.Series)-1].Normalized
	if math.Abs(final) > 0.15 {
		t.Fatalf("uniform-adversary regret %v, want within 15%%", final)
	}
}

func TestDriftAdversaryBoundedRegret(t *testing.T) {
	inst := advInstance(t)
	adv := &DriftAdversary{Rules: 4, Paths: len(inst.Paths), High: 0.01, Period: 15, Hot: 3, Seed: 5}
	res, err := RunVsAdversary(inst, adv, RunConfig{Epochs: 90, SampleEvery: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Against a drifting adversary the *best static* benchmark is itself
	// weak; FPL must stay within a moderate envelope of it.
	final := res.Series[len(res.Series)-1].Normalized
	if final > 0.5 {
		t.Fatalf("drift-adversary regret %v, want <= 0.5", final)
	}
	if res.FPLTotal <= 0 {
		t.Fatal("online deployer dropped nothing against the drift adversary")
	}
}

func TestEvasiveAdversaryFPLStillDrops(t *testing.T) {
	inst := advInstance(t)
	adv := &EvasiveAdversary{Inst: inst, High: 0.01, Hot: 4, Seed: 9}
	res, err := RunVsAdversary(inst, adv, RunConfig{Epochs: 80, SampleEvery: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.FPLTotal <= 0 {
		t.Fatal("evasive adversary reduced the online deployer to zero: perturbation inert")
	}
	// Sanity on the benchmark ordering: regret is defined against the best
	// static decision, so FPLTotal <= StaticTotal + tolerance is not
	// guaranteed per-epoch but the normalized series must be finite.
	for _, pt := range res.Series {
		if math.IsNaN(pt.Normalized) || math.IsInf(pt.Normalized, 0) {
			t.Fatalf("non-finite regret at epoch %d", pt.Epoch)
		}
	}
}

func TestEvasiveAdversaryAttacksLeastCovered(t *testing.T) {
	inst := advInstance(t)
	adv := &EvasiveAdversary{Inst: inst, High: 0.01, Hot: 2, Seed: 1}
	// A decision that fully covers rule 0 on every path but nothing else:
	// the evader must put its mass outside rule 0.
	dec := &Decision{D: make([][][]float64, len(inst.Rules))}
	for i := range dec.D {
		dec.D[i] = make([][]float64, len(inst.Paths))
		for k := range inst.Paths {
			dec.D[i][k] = make([]float64, len(inst.Paths[k]))
			if i == 0 {
				dec.D[i][k][0] = 1
			}
		}
	}
	m := adv.Next(2, dec)
	for k := range m[0] {
		if m[0][k] != 0 {
			t.Fatalf("evader attacked fully covered rule 0 path %d", k)
		}
	}
	// And the mass must land somewhere.
	var total float64
	for i := range m {
		for k := range m[i] {
			total += m[i][k]
		}
	}
	if total == 0 {
		t.Fatal("evader placed no attack mass")
	}
}

func TestEvasiveFirstEpochWithoutHistory(t *testing.T) {
	inst := advInstance(t)
	adv := &EvasiveAdversary{Inst: inst, High: 0.01, Seed: 1}
	m := adv.Next(1, nil)
	var total float64
	for i := range m {
		for k := range m[i] {
			total += m[i][k]
		}
	}
	if total <= 0 {
		t.Fatal("no attack mass in the blind first epoch")
	}
}

func TestRunVsAdversaryValidation(t *testing.T) {
	inst := advInstance(t)
	adv := &UniformAdversary{Rules: 4, Paths: len(inst.Paths), High: 0.01}
	if _, err := RunVsAdversary(inst, adv, RunConfig{Epochs: 0}); err == nil {
		t.Fatal("expected epoch validation error")
	}
}

func TestAdversaryNames(t *testing.T) {
	if (&DriftAdversary{}).Name() != "drift" || (&EvasiveAdversary{}).Name() != "evasive" {
		t.Fatal("adversary names wrong")
	}
}
