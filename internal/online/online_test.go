package online

import (
	"math"
	"testing"

	"nwdeploy/internal/nips"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func onlineInstance(t *testing.T, rules, paths int) *nips.Instance {
	t.Helper()
	// TCAM caps are irrelevant here (Section 3.5 removes Eq. 8).
	return nips.NewInstance(topology.Internet2(), nips.UnitRules(rules), nips.Config{
		MaxPaths:             paths,
		RuleCapacityFraction: 1,
		MatchSeed:            13,
	})
}

func TestAdapterEpsPositive(t *testing.T) {
	inst := onlineInstance(t, 5, 10)
	ad := NewAdapter(inst, 100, 0.01, 1)
	if ad.Eps <= 0 || math.IsInf(ad.Eps, 0) || math.IsNaN(ad.Eps) {
		t.Fatalf("eps = %v", ad.Eps)
	}
}

func TestDecisionRespectsConstraints(t *testing.T) {
	inst := onlineInstance(t, 5, 10)
	ad := NewAdapter(inst, 50, 0.01, 2)
	// Feed a few epochs then check the decision's feasibility.
	for e := 0; e < 3; e++ {
		dec, err := ad.Decide()
		if err != nil {
			t.Fatal(err)
		}
		n := inst.Topo.N()
		mem := make([]float64, n)
		cpu := make([]float64, n)
		for i := range dec.D {
			for k, path := range inst.Paths {
				cover := 0.0
				for pos, j := range path {
					d := dec.D[i][k][pos]
					if d < 0 || d > 1 {
						t.Fatalf("d out of range: %v", d)
					}
					cover += d
					mem[j] += inst.Items[k] * d
					cpu[j] += inst.Pkts[k] * d
				}
				if cover > 1+1e-6 {
					t.Fatalf("coverage %v > 1", cover)
				}
			}
		}
		for j := 0; j < n; j++ {
			if mem[j] > inst.MemCap[j]*(1+1e-6) || cpu[j] > inst.CPUCap[j]*(1+1e-6) {
				t.Fatalf("capacity violated at node %d: mem %v cpu %v", j, mem[j], cpu[j])
			}
		}
		m := traffic.MatchRates(len(inst.Rules), len(inst.Paths), 0, 0.01, int64(e))
		if err := ad.Observe(m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestObserveValidatesShape(t *testing.T) {
	inst := onlineInstance(t, 3, 5)
	ad := NewAdapter(inst, 10, 0.01, 3)
	if err := ad.Observe(make([][]float64, 2)); err == nil {
		t.Fatal("expected shape error for wrong rule count")
	}
	bad := make([][]float64, 3)
	for i := range bad {
		bad[i] = make([]float64, 1)
	}
	if err := ad.Observe(bad); err == nil {
		t.Fatal("expected shape error for wrong path count")
	}
}

func TestBestStaticDominatesArbitraryDecision(t *testing.T) {
	inst := onlineInstance(t, 4, 8)
	var epochs [][][]float64
	for e := 0; e < 5; e++ {
		epochs = append(epochs, traffic.MatchRates(4, len(inst.Paths), 0, 0.01, int64(100+e)))
	}
	static, total, err := BestStatic(inst, epochs)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatalf("static total %v, want > 0", total)
	}
	// The hindsight optimum must beat the all-zero decision and any
	// single-epoch-greedy decision evaluated over the whole horizon.
	greedy, err := solveLambda(inst, func(i, k int) float64 { return epochs[0][i][k] }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var greedyTotal float64
	for _, m := range epochs {
		greedyTotal += Reward(inst, greedy, m)
	}
	if greedyTotal > total+1e-6 {
		t.Fatalf("first-epoch greedy (%v) beat hindsight optimum (%v)", greedyTotal, total)
	}
	_ = static
}

func TestRewardLinearity(t *testing.T) {
	inst := onlineInstance(t, 3, 6)
	dec, err := solveLambda(inst, func(i, k int) float64 { return 1 }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m1 := traffic.MatchRates(3, len(inst.Paths), 0, 0.01, 1)
	m2 := traffic.MatchRates(3, len(inst.Paths), 0, 0.01, 2)
	sum := make([][]float64, 3)
	for i := range sum {
		sum[i] = make([]float64, len(inst.Paths))
		for k := range sum[i] {
			sum[i][k] = m1[i][k] + m2[i][k]
		}
	}
	lhs := Reward(inst, dec, sum)
	rhs := Reward(inst, dec, m1) + Reward(inst, dec, m2)
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Fatalf("reward not linear: %v vs %v", lhs, rhs)
	}
}

func TestRunRegretConvergesToSmall(t *testing.T) {
	// The paper's Figure 11: regret at most ~15% of the best static
	// solution, trending to zero over time. A short horizon with a small
	// instance keeps the test fast while exercising the full loop.
	inst := onlineInstance(t, 4, 8)
	series, err := Run(inst, RunConfig{Epochs: 60, SampleEvery: 10, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("got %d samples, want 6", len(series))
	}
	final := series[len(series)-1].Normalized
	if math.Abs(final) > 0.15 {
		t.Fatalf("final normalized regret %v, want |r| <= 0.15", final)
	}
	// The late-horizon regret must not exceed the early-horizon regret by
	// much (convergence trend).
	early := math.Abs(series[0].Normalized)
	if math.Abs(final) > early+0.05 {
		t.Fatalf("regret grew: early %v, final %v", early, final)
	}
}

func TestRunValidation(t *testing.T) {
	inst := onlineInstance(t, 2, 4)
	if _, err := Run(inst, RunConfig{Epochs: 0}); err == nil {
		t.Fatal("expected error for zero epochs")
	}
}
