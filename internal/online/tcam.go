package online

import (
	"fmt"
	"math"
	"math/rand"

	"nwdeploy/internal/nips"
)

// The paper's second future-work direction for Section 3.5 is "to apply
// this framework to the formulation from Section 3.2" — the full
// TCAM-constrained problem, where the per-epoch optimizer Lambda is no
// longer exact (the problem is NP-hard) but an approximation algorithm.
// The Kalai–Vempala framework extends to this case (the paper's footnote
// cites Kakade, Kalai, and Ligett): following the perturbed leader with an
// alpha-approximate Lambda yields vanishing alpha-regret — regret measured
// against alpha times the best static solution. TCAMAdapter implements
// exactly that: each epoch it perturbs the cumulative match-rate state and
// runs the rounding+greedy+LP pipeline as Lambda.

// TCAMAdapter runs FPL over integral TCAM-constrained deployments.
type TCAMAdapter struct {
	inst *nips.Instance
	// Eps is the perturbation parameter, set as in NewAdapter.
	Eps float64
	// Iters is the rounding iterations Lambda uses per epoch.
	Iters int
	// Workers fans Lambda's rounding iterations out across a worker pool
	// (0 = GOMAXPROCS, 1 = serial). The decision sequence is identical for
	// every worker count: each epoch's iterations draw from seeds derived
	// off the adapter's own RNG stream, never from a shared *rand.Rand.
	Workers int

	cum [][]float64
	rng *rand.Rand
}

// NewTCAMAdapter builds the adapter; parameters follow NewAdapter, plus
// the rounding iteration count for the approximate Lambda.
func NewTCAMAdapter(inst *nips.Instance, gamma int, maxdrop float64, iters int, seed int64) *TCAMAdapter {
	base := NewAdapter(inst, gamma, maxdrop, seed)
	if iters <= 0 {
		iters = 3
	}
	return &TCAMAdapter{
		inst:  inst,
		Eps:   base.Eps,
		Iters: iters,
		cum:   base.cum,
		rng:   base.rng,
	}
}

// perturbedInstance clones the instance with match rates set to the
// perturbed cumulative state. Only the objective depends on M, so the
// clone shares every other field.
func (a *TCAMAdapter) perturbedInstance() *nips.Instance {
	clone := *a.inst
	m := make([][]float64, len(a.cum))
	for i := range m {
		m[i] = make([]float64, len(a.cum[i]))
		for k := range m[i] {
			// Perturbation scaled into match-rate units: the state element
			// is Items*M*Dist, so dividing the raw U[0,1/eps] draw by the
			// path volume keeps the perturbation comparable across paths.
			p := a.rng.Float64() / a.Eps / math.Max(1, a.inst.Items[k])
			m[i][k] = a.cum[i][k] + p
		}
	}
	clone.M = m
	return &clone
}

// Decide returns this epoch's integral deployment: Lambda (relaxation +
// rounding + greedy + LP re-solve) on the perturbed historical state.
func (a *TCAMAdapter) Decide() (*nips.Deployment, error) {
	dep, _, err := nips.Solve(a.perturbedInstance(), nips.SolveOptions{
		Variant: nips.VariantRoundGreedyLP,
		Iters:   a.Iters,
		Seed:    a.rng.Int63(),
		Workers: a.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("online: TCAM Lambda: %w", err)
	}
	return dep, nil
}

// Observe accumulates the revealed epoch state.
func (a *TCAMAdapter) Observe(m [][]float64) error {
	if len(m) != len(a.cum) {
		return fmt.Errorf("online: observed %d rules, want %d", len(m), len(a.cum))
	}
	for i := range m {
		if len(m[i]) != len(a.cum[i]) {
			return fmt.Errorf("online: rule %d observed %d paths, want %d", i, len(m[i]), len(a.cum[i]))
		}
		for k := range m[i] {
			a.cum[i][k] += m[i][k]
		}
	}
	return nil
}

// DeploymentReward evaluates an integral deployment against one epoch's
// match rates.
func DeploymentReward(inst *nips.Instance, dep *nips.Deployment, m [][]float64) float64 {
	var total float64
	for i := range dep.D {
		for k := range dep.D[i] {
			for pos := range dep.D[i][k] {
				total += dep.D[i][k][pos] * inst.Items[k] * m[i][k] * inst.Dist[k][pos]
			}
		}
	}
	return total
}

// BestStaticTCAM approximates the best static integral deployment in
// hindsight with the same Lambda the adapter uses (exactness is NP-hard).
func BestStaticTCAM(inst *nips.Instance, epochs [][][]float64, iters int, seed int64) (*nips.Deployment, float64, error) {
	clone := *inst
	sum := make([][]float64, len(inst.Rules))
	for i := range sum {
		sum[i] = make([]float64, len(inst.Paths))
		for k := range sum[i] {
			for _, m := range epochs {
				sum[i][k] += m[i][k]
			}
		}
	}
	clone.M = sum
	dep, _, err := nips.Solve(&clone, nips.SolveOptions{
		Variant: nips.VariantRoundGreedyLP, Iters: iters, Seed: seed,
	})
	if err != nil {
		return nil, 0, err
	}
	var total float64
	for _, m := range epochs {
		total += DeploymentReward(inst, dep, m)
	}
	return dep, total, nil
}

// RunTCAM plays the TCAM adapter against an adversary for the horizon and
// samples the normalized (alpha-)regret like RunVsAdversary.
func RunTCAM(inst *nips.Instance, adv Adversary, cfg RunConfig, iters int) (*AdversarialResult, error) {
	if cfg.Epochs <= 0 {
		return nil, errNonPositiveEpochs
	}
	sample := cfg.SampleEvery
	if sample <= 0 {
		sample = 10
	}
	ad := NewTCAMAdapter(inst, cfg.Epochs, cfg.Maxdrop, iters, cfg.Seed)

	res := &AdversarialResult{Adversary: adv.Name() + "+tcam"}
	var history [][][]float64
	var prevDecision *Decision
	for t := 1; t <= cfg.Epochs; t++ {
		m := adv.Next(t, prevDecision)
		dep, err := ad.Decide()
		if err != nil {
			return nil, err
		}
		res.FPLTotal += DeploymentReward(inst, dep, m)
		if err := ad.Observe(m); err != nil {
			return nil, err
		}
		history = append(history, m)
		prevDecision = &Decision{D: dep.D}
		if t%sample == 0 || t == cfg.Epochs {
			_, staticTotal, err := BestStaticTCAM(inst, history, iters, cfg.Seed)
			if err != nil {
				return nil, err
			}
			pt := RegretPoint{Epoch: t}
			if staticTotal > 0 {
				pt.Normalized = (staticTotal - res.FPLTotal) / staticTotal
			}
			res.Series = append(res.Series, pt)
			res.StaticTotal = staticTotal
		}
	}
	return res, nil
}
