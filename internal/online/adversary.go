package online

import (
	"math/rand"

	"nwdeploy/internal/nips"
	"nwdeploy/internal/traffic"
)

// Adversary generates the unwanted-traffic mix for each epoch. The paper's
// preliminary evaluation draws match rates i.i.d. uniform; its stated
// future work is evaluating FPL "in the presence of strategic adversaries"
// — adversaries that choose the mix as a function of the defender's
// behaviour. Implementations here cover the spectrum: oblivious
// randomness, drifting concentration, and a fully adaptive evader.
//
// Next may observe the defender's previous decision (nil in the first
// epoch); the current epoch's decision is never visible, preserving the
// online model's information order.
type Adversary interface {
	Name() string
	Next(epoch int, prev *Decision) [][]float64
}

// UniformAdversary redraws M_ik ~ U[0, High) each epoch, independent of
// the defender — the paper's Figure 11 setting.
type UniformAdversary struct {
	Rules, Paths int
	High         float64
	Seed         int64
}

// Name implements Adversary.
func (a *UniformAdversary) Name() string { return "uniform" }

// Next implements Adversary.
func (a *UniformAdversary) Next(epoch int, _ *Decision) [][]float64 {
	return traffic.MatchRates(a.Rules, a.Paths, 0, a.High, a.Seed+int64(epoch)*7919)
}

// DriftAdversary concentrates the attack on a small set of (rule, path)
// pairs and rotates that set every Period epochs — a botnet shifting its
// campaign. Non-adaptive but highly non-stationary.
type DriftAdversary struct {
	Rules, Paths int
	High         float64
	Period       int
	Hot          int // concentrated pairs per phase
	Seed         int64
}

// Name implements Adversary.
func (a *DriftAdversary) Name() string { return "drift" }

// Next implements Adversary.
func (a *DriftAdversary) Next(epoch int, _ *Decision) [][]float64 {
	period := a.Period
	if period <= 0 {
		period = 50
	}
	hot := a.Hot
	if hot <= 0 {
		hot = 3
	}
	phase := epoch / period
	rng := rand.New(rand.NewSource(a.Seed + int64(phase)*104729))
	m := make([][]float64, a.Rules)
	for i := range m {
		m[i] = make([]float64, a.Paths)
		for k := range m[i] {
			m[i][k] = rng.Float64() * a.High / 20 // background trickle
		}
	}
	for h := 0; h < hot; h++ {
		i := rng.Intn(a.Rules)
		k := rng.Intn(a.Paths)
		m[i][k] = a.High * (0.8 + 0.2*rng.Float64())
	}
	return m
}

// EvasiveAdversary is fully adaptive: each epoch it inspects the
// defender's previous sampling decision and concentrates the unwanted
// traffic on the (rule, path) pairs with the LEAST sampling coverage,
// maximizing what slips through if the defender repeats itself. This is
// exactly the strategy FPL's perturbation is designed to blunt ("the
// perturbation term guards against adversaries who know our strategy").
type EvasiveAdversary struct {
	Inst *nips.Instance
	High float64
	Hot  int
	Seed int64
}

// Name implements Adversary.
func (a *EvasiveAdversary) Name() string { return "evasive" }

// Next implements Adversary.
func (a *EvasiveAdversary) Next(epoch int, prev *Decision) [][]float64 {
	nRules := len(a.Inst.Rules)
	nPaths := len(a.Inst.Paths)
	hot := a.Hot
	if hot <= 0 {
		hot = max(1, nRules*nPaths/10)
	}
	m := make([][]float64, nRules)
	for i := range m {
		m[i] = make([]float64, nPaths)
	}
	if prev == nil {
		// No information yet: attack arbitrarily (deterministically).
		for h := 0; h < hot; h++ {
			m[h%nRules][(h*3)%nPaths] = a.High
		}
		return m
	}
	// Rank (rule, path) pairs by the defender's total sampling coverage
	// and attack the least-covered ones.
	type cell struct {
		i, k  int
		cover float64
	}
	cells := make([]cell, 0, nRules*nPaths)
	for i := 0; i < nRules; i++ {
		for k := 0; k < nPaths; k++ {
			c := 0.0
			for pos := range prev.D[i][k] {
				c += prev.D[i][k][pos]
			}
			cells = append(cells, cell{i, k, c})
		}
	}
	// Selection sort of the hot least-covered cells (hot is small);
	// deterministic tie-break by indices keeps runs reproducible.
	for h := 0; h < hot && h < len(cells); h++ {
		minAt := h
		for x := h + 1; x < len(cells); x++ {
			if cells[x].cover < cells[minAt].cover-1e-12 ||
				(cells[x].cover < cells[minAt].cover+1e-12 &&
					(cells[x].i < cells[minAt].i || (cells[x].i == cells[minAt].i && cells[x].k < cells[minAt].k))) {
				minAt = x
			}
		}
		cells[h], cells[minAt] = cells[minAt], cells[h]
		m[cells[h].i][cells[h].k] = a.High
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AdversarialResult summarizes one run against an adversary.
type AdversarialResult struct {
	Adversary string
	Series    []RegretPoint
	// FPLTotal and StaticTotal are the cumulative objectives of the online
	// strategy and of the best static decision in hindsight.
	FPLTotal, StaticTotal float64
}

// RunVsAdversary plays the FPL deployer against an adversary for the
// configured horizon, sampling the normalized regret like Run.
func RunVsAdversary(inst *nips.Instance, adv Adversary, cfg RunConfig) (*AdversarialResult, error) {
	if cfg.Epochs <= 0 {
		return nil, errNonPositiveEpochs
	}
	sample := cfg.SampleEvery
	if sample <= 0 {
		sample = 10
	}
	ad := NewAdapter(inst, cfg.Epochs, cfg.Maxdrop, cfg.Seed)

	res := &AdversarialResult{Adversary: adv.Name()}
	var history [][][]float64
	var prev *Decision
	for t := 1; t <= cfg.Epochs; t++ {
		m := adv.Next(t, prev) // adversary commits before seeing d_t
		dec, err := ad.Decide()
		if err != nil {
			return nil, err
		}
		res.FPLTotal += Reward(inst, dec, m)
		if err := ad.Observe(m); err != nil {
			return nil, err
		}
		history = append(history, m)
		prev = dec
		if t%sample == 0 || t == cfg.Epochs {
			_, staticTotal, err := BestStatic(inst, history)
			if err != nil {
				return nil, err
			}
			pt := RegretPoint{Epoch: t, Cumulative: staticTotal - res.FPLTotal}
			if staticTotal > 0 {
				pt.Normalized = (staticTotal - res.FPLTotal) / staticTotal
			}
			res.Series = append(res.Series, pt)
			res.StaticTotal = staticTotal
		}
	}
	return res, nil
}
