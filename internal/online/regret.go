package online

import "math"

// RegretSlope estimates the growth exponent of the cumulative regret from
// a sampled series: the least-squares slope of ln(cumulative) versus
// ln(epoch) over the second half of the samples (the first half is FPL's
// learning transient and would bias the fit). An exponent below 1 is
// sublinear growth — Theorem 3.1's O(sqrt(T)) bound predicts ~0.5 against
// a stationary adversary.
//
// Any non-positive cumulative regret inside the fit window returns 0: the
// online strategy is matching or beating the hindsight static optimum
// outright, which is stronger than any sublinear growth claim (common
// against the evasive adversary, whose mix a static plan cannot chase).
func RegretSlope(series []RegretPoint) float64 {
	half := series[len(series)/2:]
	if len(half) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, pt := range half {
		if pt.Cumulative <= 0 || pt.Epoch <= 0 {
			return 0
		}
		x := math.Log(float64(pt.Epoch))
		y := math.Log(pt.Cumulative)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(half))
	den := n*sxx - sx*sx
	if den <= 0 {
		return 0 // all samples at one epoch: no slope to estimate
	}
	return (n*sxy - sx*sy) / den
}
