package online

import (
	"math"
	"testing"
)

// synthetic builds a sampled series with cumulative regret C(t) = c * t^p.
func synthetic(p, c float64, epochs, every int) []RegretPoint {
	var s []RegretPoint
	for t := every; t <= epochs; t += every {
		s = append(s, RegretPoint{Epoch: t, Cumulative: c * math.Pow(float64(t), p)})
	}
	return s
}

func TestRegretSlopeRecoversExponent(t *testing.T) {
	for _, p := range []float64{0.5, 1.0, 0.8} {
		got := RegretSlope(synthetic(p, 3.7, 400, 25))
		if math.Abs(got-p) > 1e-9 {
			t.Fatalf("exact power law t^%v estimated slope %v", p, got)
		}
	}
}

func TestRegretSlopeDegenerateSeries(t *testing.T) {
	if s := RegretSlope(nil); s != 0 {
		t.Fatalf("empty series slope %v", s)
	}
	if s := RegretSlope([]RegretPoint{{Epoch: 10, Cumulative: 5}}); s != 0 {
		t.Fatalf("single-sample slope %v", s)
	}
	// FPL beating the static benchmark (negative cumulative regret) is
	// reported as 0 — trivially sublinear, never NaN from log of negatives.
	neg := []RegretPoint{
		{Epoch: 10, Cumulative: 4}, {Epoch: 20, Cumulative: -1},
		{Epoch: 30, Cumulative: -2}, {Epoch: 40, Cumulative: -3},
	}
	if s := RegretSlope(neg); s != 0 || math.IsNaN(s) {
		t.Fatalf("negative-regret series slope %v", s)
	}
}

// The transient is excluded: a series whose first half grows linearly but
// whose second half has flattened to sqrt must report the asymptotic
// exponent, not the transient's.
func TestRegretSlopeIgnoresTransient(t *testing.T) {
	var s []RegretPoint
	for t0 := 20; t0 <= 200; t0 += 20 {
		c := float64(t0) // linear transient
		if t0 > 100 {
			c = 100 * math.Sqrt(float64(t0)/100) // sqrt tail, continuous at 100
		}
		s = append(s, RegretPoint{Epoch: t0, Cumulative: c})
	}
	got := RegretSlope(s)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("slope %v, want the 0.5 tail exponent", got)
	}
}
