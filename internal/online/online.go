// Package online implements the paper's Section 3.5: making NIPS
// deployment robust to adaptive adversaries who control the unwanted
// traffic mix. It follows the Kalai–Vempala framework for online linear
// optimization: decisions are the sampling vectors d_ikj, the state of the
// world in epoch t is the vector of T_ik^items x M_ik(t) x Dist_ikj terms
// revealed only after the decision, and the follow-the-perturbed-leader
// (FPL) strategy plays the optimizer Lambda on the perturbed historical sum
// of states. Theorem 3.1 bounds the expected average regret by
// sqrt(D*R*A/gamma) with the constants defined in the paper.
//
// As in the paper's preliminary evaluation, the TCAM constraints (and the
// discrete e_ij variables) are removed: Lambda is a pure LP.
package online

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"nwdeploy/internal/lp"
	"nwdeploy/internal/nips"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/traffic"
)

// errNonPositiveEpochs rejects empty horizons.
var errNonPositiveEpochs = errors.New("online: nonpositive epoch count")

// Decision is a fractional sampling assignment: D[i][k][pos] parallels the
// instance's rule/path/position structure.
type Decision struct {
	D [][][]float64
}

// Adapter runs the FPL strategy over epochs.
type Adapter struct {
	inst *nips.Instance
	// Eps is the FPL perturbation parameter (perturbations are drawn
	// uniformly from [0, 1/Eps]^n).
	Eps float64

	cum     [][]float64 // cumulative observed match rates per (rule, path)
	epoch   int
	rng     *rand.Rand
	metrics *obs.Registry
}

// AdapterOptions parameterizes NewAdapterOpts. The zero value selects a
// one-epoch horizon and a 1% droppable-traffic bound.
type AdapterOptions struct {
	// Horizon is the intended number of epochs (gamma in Theorem 3.1);
	// values below 1 select 1.
	Horizon int
	// MaxDrop is a conservative bound on the droppable traffic fraction;
	// zero or negative selects 0.01. Together with Horizon it sets the
	// perturbation scale eps = sqrt(D/(R*A*gamma)).
	MaxDrop float64
	// Seed drives the per-epoch perturbation draws.
	Seed int64
	// Workers is reserved for parallel decision evaluation; the exact
	// Lambda is a single LP solve today, so it is currently unused.
	Workers int
	// Metrics, when non-nil, receives per-decision LP solver counters and
	// an online.decide_ns span. The registry is write-only: the decision
	// sequence is identical with or without it (nil is the no-op default;
	// see internal/obs).
	Metrics *obs.Registry
}

// NewAdapter builds an FPL adapter for the instance. gamma is the intended
// horizon and maxdrop the conservative bound on the droppable traffic
// fraction; together they set eps = sqrt(D/(R*A*gamma)) per Theorem 3.1,
// with D = M*N*L and R = A = sum_ik T_ik^items * maxdrop.
func NewAdapter(inst *nips.Instance, gamma int, maxdrop float64, seed int64) *Adapter {
	return NewAdapterOpts(inst, AdapterOptions{Horizon: gamma, MaxDrop: maxdrop, Seed: seed})
}

// NewAdapterOpts builds an FPL adapter from an options struct; see
// AdapterOptions for the Theorem 3.1 constants the fields control.
func NewAdapterOpts(inst *nips.Instance, opts AdapterOptions) *Adapter {
	gamma, maxdrop := opts.Horizon, opts.MaxDrop
	if gamma < 1 {
		gamma = 1
	}
	if maxdrop <= 0 {
		maxdrop = 0.01
	}
	nPaths := len(inst.Paths)
	nNodes := inst.Topo.N()
	nRules := len(inst.Rules)
	dDim := float64(nPaths * nNodes * nRules)
	var ra float64
	for k := range inst.Paths {
		ra += inst.Items[k] * maxdrop
	}
	eps := math.Sqrt(dDim / (ra * ra * float64(gamma)))
	cum := make([][]float64, nRules)
	for i := range cum {
		cum[i] = make([]float64, nPaths)
	}
	return &Adapter{
		inst:    inst,
		Eps:     eps,
		cum:     cum,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		metrics: opts.Metrics,
	}
}

// Decide returns the FPL decision for the current epoch: Lambda applied to
// the perturbed sum of observed states. The perturbation is drawn fresh
// each epoch, guarding against adversaries who know the strategy.
func (a *Adapter) Decide() (*Decision, error) {
	sp := a.metrics.StartSpan("online.decide_ns")
	defer sp.End()
	a.metrics.Add("online.decisions", 1)
	perturb := func(i, k, pos int) float64 {
		return a.rng.Float64() / a.Eps
	}
	weights := func(i, k int) float64 { return a.cum[i][k] }
	return solveLambda(a.inst, weights, perturb, a.metrics)
}

// Observe reveals epoch t's true match rates (after the decision, as the
// framework requires) and accumulates them into the state history.
func (a *Adapter) Observe(m [][]float64) error {
	if len(m) != len(a.cum) {
		return fmt.Errorf("online: observed %d rules, want %d", len(m), len(a.cum))
	}
	for i := range m {
		if len(m[i]) != len(a.cum[i]) {
			return fmt.Errorf("online: rule %d observed %d paths, want %d", i, len(m[i]), len(a.cum[i]))
		}
		for k := range m[i] {
			a.cum[i][k] += m[i][k]
		}
	}
	a.epoch++
	return nil
}

// Reward evaluates a decision against one epoch's true match rates: the
// Eq. (7) objective realized in that epoch.
func Reward(inst *nips.Instance, d *Decision, m [][]float64) float64 {
	var total float64
	for i := range d.D {
		for k := range d.D[i] {
			for pos := range d.D[i][k] {
				total += d.D[i][k][pos] * inst.Items[k] * m[i][k] * inst.Dist[k][pos]
			}
		}
	}
	return total
}

// BestStatic computes the single decision maximizing the total reward over
// the given epochs — the hindsight benchmark the regret is measured
// against. By linearity it is Lambda applied to the unperturbed state sum.
func BestStatic(inst *nips.Instance, epochs [][][]float64) (*Decision, float64, error) {
	nRules := len(inst.Rules)
	nPaths := len(inst.Paths)
	sum := make([][]float64, nRules)
	for i := range sum {
		sum[i] = make([]float64, nPaths)
		for k := range sum[i] {
			for _, m := range epochs {
				sum[i][k] += m[i][k]
			}
		}
	}
	d, err := solveLambda(inst, func(i, k int) float64 { return sum[i][k] }, nil, nil)
	if err != nil {
		return nil, 0, err
	}
	var total float64
	for _, m := range epochs {
		total += Reward(inst, d, m)
	}
	return d, total, nil
}

// solveLambda is the optimization procedure Lambda: maximize the weighted
// Eq. (7) objective subject to the capacity and coverage constraints (no
// TCAM, so no integral variables). perturb and metrics may be nil.
func solveLambda(inst *nips.Instance, weight func(i, k int) float64, perturb func(i, k, pos int) float64, metrics *obs.Registry) (*Decision, error) {
	p := lp.New(lp.Maximize)
	n := inst.Topo.N()
	memTerms := make([][]lp.Term, n)
	cpuTerms := make([][]lp.Term, n)
	type ref struct{ i, k, pos int }
	var refs []ref
	var vars []lp.Var
	for i := range inst.Rules {
		for k, path := range inst.Paths {
			cover := make([]lp.Term, 0, len(path))
			for pos, j := range path {
				coef := inst.Items[k] * weight(i, k) * inst.Dist[k][pos]
				if perturb != nil {
					coef += perturb(i, k, pos)
				}
				v := p.AddVar("d", coef, 0, 1)
				refs = append(refs, ref{i, k, pos})
				vars = append(vars, v)
				cover = append(cover, lp.Term{Var: v, Coef: 1})
				memTerms[j] = append(memTerms[j], lp.Term{Var: v, Coef: inst.Items[k] * inst.Rules[i].MemPerItem})
				cpuTerms[j] = append(cpuTerms[j], lp.Term{Var: v, Coef: inst.Pkts[k] * inst.Rules[i].CPUPerPkt})
			}
			p.AddConstraint("cover", cover, lp.LE, 1)
		}
	}
	for j := 0; j < n; j++ {
		if len(memTerms[j]) > 0 {
			p.AddConstraint("mem", memTerms[j], lp.LE, inst.MemCap[j])
		}
		if len(cpuTerms[j]) > 0 {
			p.AddConstraint("cpu", cpuTerms[j], lp.LE, inst.CPUCap[j])
		}
	}
	sol, err := p.SolveOpts(lp.Options{Metrics: metrics})
	if err != nil {
		return nil, fmt.Errorf("online: Lambda: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("online: Lambda: %w", sol.Status.Err())
	}
	d := &Decision{D: make([][][]float64, len(inst.Rules))}
	for i := range inst.Rules {
		d.D[i] = make([][]float64, len(inst.Paths))
		for k := range inst.Paths {
			d.D[i][k] = make([]float64, len(inst.Paths[k]))
		}
	}
	for x, r := range refs {
		v := sol.Value(vars[x])
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		d.D[r.i][r.k][r.pos] = v
	}
	return d, nil
}

// RegretPoint is one sample of the Figure 11 series.
type RegretPoint struct {
	Epoch int
	// Normalized is the cumulative regret against the best static decision
	// in hindsight for this prefix, normalized by that static optimum's
	// cumulative objective. Negative values mean the online algorithm beat
	// the best static choice so far.
	Normalized float64
	// Cumulative is the raw (unnormalized) cumulative regret at this
	// sample: the hindsight static optimum's total minus FPL's total.
	// Theorem 3.1 promises it grows sublinearly in the epoch count — the
	// property RegretSlope estimates from a series of these.
	Cumulative float64
}

// RunConfig parameterizes a Figure 11 style experiment.
type RunConfig struct {
	Epochs int
	// SampleEvery controls how often the (LP-solving) hindsight benchmark
	// is recomputed; zero samples every 10 epochs.
	SampleEvery int
	// MatchHigh is the upper bound of the per-epoch uniform match-rate
	// distribution; zero selects the paper's 0.01.
	MatchHigh float64
	// Maxdrop feeds the Theorem 3.1 constants; zero selects 0.01.
	Maxdrop float64
	Seed    int64
}

// Run executes one online-adaptation run: in every epoch the adapter
// decides, the adversary's match rates are revealed, and the realized
// objective is compared — at sampling points — to the best static decision
// in hindsight. It returns the normalized-regret series.
func Run(inst *nips.Instance, cfg RunConfig) ([]RegretPoint, error) {
	if cfg.Epochs <= 0 {
		return nil, errNonPositiveEpochs
	}
	sample := cfg.SampleEvery
	if sample <= 0 {
		sample = 10
	}
	high := cfg.MatchHigh
	if high == 0 {
		high = 0.01
	}
	ad := NewAdapter(inst, cfg.Epochs, cfg.Maxdrop, cfg.Seed)

	var history [][][]float64
	var fplTotal float64
	var series []RegretPoint
	for t := 1; t <= cfg.Epochs; t++ {
		dec, err := ad.Decide()
		if err != nil {
			return nil, err
		}
		m := traffic.MatchRates(len(inst.Rules), len(inst.Paths), 0, high, cfg.Seed+int64(t)*7919)
		fplTotal += Reward(inst, dec, m)
		if err := ad.Observe(m); err != nil {
			return nil, err
		}
		history = append(history, m)
		if t%sample == 0 || t == cfg.Epochs {
			_, staticTotal, err := BestStatic(inst, history)
			if err != nil {
				return nil, err
			}
			pt := RegretPoint{Epoch: t, Cumulative: staticTotal - fplTotal}
			if staticTotal > 0 {
				pt.Normalized = (staticTotal - fplTotal) / staticTotal
			}
			series = append(series, pt)
		}
	}
	return series, nil
}
