package online

import (
	"math"
	"testing"

	"nwdeploy/internal/nips"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func tcamInstance(t *testing.T) *nips.Instance {
	t.Helper()
	return nips.NewInstance(topology.Internet2(), nips.UnitRules(5), nips.Config{
		MaxPaths:             8,
		RuleCapacityFraction: 0.4, // 2 TCAM slots per node: enablement is binding
		MatchSeed:            3,
	})
}

func TestTCAMAdapterDecisionsAreFeasible(t *testing.T) {
	inst := tcamInstance(t)
	ad := NewTCAMAdapter(inst, 30, 0.01, 2, 5)
	for e := 0; e < 3; e++ {
		dep, err := ad.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.Verify(inst); err != nil {
			t.Fatalf("epoch %d: integral deployment infeasible: %v", e, err)
		}
		m := traffic.MatchRates(5, len(inst.Paths), 0, 0.01, int64(e))
		if err := ad.Observe(m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCAMAdapterObserveValidation(t *testing.T) {
	inst := tcamInstance(t)
	ad := NewTCAMAdapter(inst, 10, 0.01, 1, 5)
	if err := ad.Observe(make([][]float64, 1)); err == nil {
		t.Fatal("expected rule-count validation error")
	}
}

func TestRunTCAMRegretBounded(t *testing.T) {
	inst := tcamInstance(t)
	adv := &UniformAdversary{Rules: 5, Paths: len(inst.Paths), High: 0.01, Seed: 8}
	res, err := RunTCAM(inst, adv, RunConfig{Epochs: 30, SampleEvery: 10, Seed: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adversary != "uniform+tcam" {
		t.Fatalf("adversary label %q", res.Adversary)
	}
	if res.FPLTotal <= 0 {
		t.Fatal("TCAM deployer dropped nothing")
	}
	final := res.Series[len(res.Series)-1].Normalized
	if math.IsNaN(final) || final > 0.5 {
		t.Fatalf("alpha-regret %v, want bounded (<= 0.5)", final)
	}
	if _, err := RunTCAM(inst, adv, RunConfig{Epochs: 0}, 1); err == nil {
		t.Fatal("expected epoch validation error")
	}
}

func TestDeploymentRewardMatchesDecisionReward(t *testing.T) {
	inst := tcamInstance(t)
	ad := NewTCAMAdapter(inst, 10, 0.01, 1, 2)
	dep, err := ad.Decide()
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.MatchRates(5, len(inst.Paths), 0, 0.01, 9)
	asDecision := &Decision{D: dep.D}
	a := DeploymentReward(inst, dep, m)
	b := Reward(inst, asDecision, m)
	if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
		t.Fatalf("reward paths disagree: %v vs %v", a, b)
	}
}
