GO ?= go

.PHONY: check race bench vet test build

# Tier-1 verification: everything must build and the full test suite pass.
check: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: vet plus the full suite under the race detector. The parallel
# determinism tests (Workers: 4 against Workers: 1) run their worker pools
# here, so data races in the sharded engine, the solver sweep, or the
# experiment grids are caught even on single-core hosts.
race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .
