GO ?= go

.PHONY: check race bench fuzz vet test build trace allocs audit scenarios telemetry

# Tier-1 verification: everything must build, vet cleanly, pass the full
# test suite, and hold the scenario grid's acceptance bar and the fleet
# telemetry plane's acceptance loop.
check: build vet test scenarios telemetry

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: vet plus the full suite under the race detector. The parallel
# determinism tests (Workers: 4 against Workers: 1) run their worker pools
# here, so data races in the sharded engine, the solver sweep, or the
# experiment grids are caught even on single-core hosts. The chaos and
# cluster packages rerun uncached (-count=1): they exercise real TCP,
# per-agent fault streams, and the gate/outage machinery, where fresh
# scheduling each run is the point.
race: vet
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/chaos/ ./internal/cluster/ ./internal/governor/ \
		./internal/bro/ ./internal/conntrack/ ./internal/control/ ./internal/ledger/ \
		./internal/telemetry/
	$(GO) test -race -count=1 -run 'Scenario|Diurnal|Flash|Maintenance|Regret' \
		./internal/experiments/ ./internal/traffic/ ./internal/online/

# Allocation gate: rerun the testing.AllocsPerRun contracts of the
# per-packet path uncached. The decision path (ShouldAnalyze / DecideAll /
# DecideMask / CoversUnit), the engine's steady-state ingestion, the
# conntrack pool, and the arena index must all report 0 allocs/op;
# -count=1 keeps a cached pass from masking a regression.
allocs:
	$(GO) test -count=1 -run 'AllocFree|Alloc|Pool' \
		./internal/control/ ./internal/bro/ ./internal/conntrack/ ./internal/hashing/

# Fuzz tier: a short smoke run of the solver fuzzer (simplex vs brute-force
# vertex enumeration on random small LPs). CI-friendly; run with a longer
# -fuzztime locally to dig.
fuzz:
	$(GO) test -run=FuzzSolve -fuzz=FuzzSolve -fuzztime=10s ./internal/lp/

# Bench tier: every figure/table benchmark plus the obs micro-benchmarks,
# with allocation reporting. Also replays the quick experiment suite with a
# live registry and leaves its metrics snapshot in BENCH_obs.json — solver
# pivot counts, rounding trials, emulation wall time — as a machine-readable
# profile of the run. The governor benchmarks cover the overload story:
# warm- vs cold-started replan solves, the shed hook's per-packet cost, and
# BENCH_governor.json with the overload grid's replan/shed counters
# (overload.replan_iters_warm vs _cold, governor.sheds/restores).
# BenchmarkTraceOverhead prints the full-epoch cost with the flight
# recorder off vs on (the acceptance bar is <= 5% slowdown when on), and
# the traced overload run leaves BENCH_trace.json (trace.events /
# trace.dropped gauges alongside the run's metrics) plus the JSONL dump
# itself in BENCH_trace.jsonl. cmd/dataplane times the per-packet decision
# path against the retained pre-index baseline (identical verdicts
# enforced) and writes BENCH_dataplane.json with decisions/sec,
# packets/sec, and the allocs/op of the batched path, which must be zero.
# cmd/controlplane scales the hierarchical control plane to 1000 in-process
# agents behind 16 region controllers and writes BENCH_controlplane.json
# (full-fetch baseline bytes, steady-state delta bytes per epoch,
# convergence sweeps, agents/sec); it exits nonzero if steady-state delta
# traffic exceeds 10% of the full baseline or any epoch needs more than
# one sync sweep budget to converge.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -bench=. -benchmem ./internal/obs/
	$(GO) test -bench=ClusterConverge -benchmem ./internal/cluster/
	$(GO) test -bench=TraceOverhead -benchmem ./internal/cluster/
	$(GO) test -bench=WarmVsColdReplan -benchmem ./internal/lp/
	$(GO) test -bench=ShedFilter -benchmem ./internal/bro/
	$(GO) test -bench=DataplaneDecide -benchmem ./internal/control/
	$(GO) run ./cmd/dataplane -o BENCH_dataplane.json
	$(GO) run ./cmd/controlplane -o BENCH_controlplane.json
	$(GO) run ./cmd/experiments -quick -metrics BENCH_obs.json >/dev/null
	$(GO) run ./cmd/experiments -quick -only overload -metrics BENCH_governor.json >/dev/null
	$(GO) run ./cmd/cluster -sessions 2000 -epochs 6 -metrics BENCH_cluster.json >/dev/null
	$(GO) run ./cmd/cluster -overload -governor -redundancy 2 \
		-sessions 1500 -epochs 5 -burstfactor 1.8 -burstprob 0.5 \
		-basejitter 0.05 -probes 500 -seed 5 \
		-trace BENCH_trace.jsonl -metrics BENCH_trace.json >/dev/null
	$(GO) run ./cmd/auditcheck -bench -o BENCH_ledger.json
	$(GO) run ./cmd/fleetstat -bench -o BENCH_telemetry.json
	$(GO) run ./cmd/experiments -only scenarios -scenarios-json BENCH_scenarios.json \
		-scenarios-assert >/dev/null

# Scenarios tier: the composable-scenario smoke run, wired into check. The
# quick grid drives all five catalog drivers (plus the maintenance+flashcrowd
# composition) against the live cluster runtime and fails unless every row
# meets its acceptance bar: coverage floor held (or every breach
# post-mortemed), zero SLO violations under the catalog thresholds, the SYN
# flood visible to the data plane, the manifest-steering adversary's traffic
# flowing with zero evasion, and FPL's cumulative regret sublinear. The full
# (non-quick) grid is the bench-tier run that leaves BENCH_scenarios.json.
scenarios:
	$(GO) run ./cmd/experiments -quick -only scenarios -scenarios-assert >/dev/null

# Telemetry tier: the fleet plane's acceptance loop, wired into check. The
# selftest runs a scenario cluster with a crash and a planned drain, serves
# the debug HTTP surface on a loopback port, scrapes /fleet, /fleet/history,
# and /metrics.prom over the wire, and fails unless the crashed node
# classifies dark and the draining node stale within one epoch and the
# Prometheus exposition validates structurally.
telemetry:
	$(GO) run ./cmd/fleetstat -selftest >/dev/null

# Audit tier: smoke the tamper-evident ledger end to end. A seeded chaos
# run and a seeded overload run each record their audit chain; auditcheck
# replays both offline (every chain link, Merkle root, and blob digest
# against the pinned HEAD, plus the genesis link against the seed), proves
# a sampled (node, range, epoch) assignment by Merkle inclusion, and runs
# the adversarial self-test: hundreds of seeded single-byte corruptions
# across chain and blobs, every one of which must fail verification.
audit:
	rm -rf audit_chaos audit_overload
	$(GO) run ./cmd/cluster -sessions 2000 -epochs 6 -seed 21 -probes 500 \
		-trace audit_chaos.trace.jsonl -ledger audit_chaos >/dev/null
	$(GO) run ./cmd/cluster -overload -governor -redundancy 2 \
		-sessions 1500 -epochs 5 -burstfactor 1.8 -burstprob 0.5 \
		-basejitter 0.05 -probes 500 -seed 5 -ledger audit_overload >/dev/null
	$(GO) run ./cmd/auditcheck -dir audit_chaos -seed 21 -tamper 200
	$(GO) run ./cmd/auditcheck -dir audit_chaos -seed 21 -q -prove -node 3 -epoch 1 \
		-class 0 -k0 3 -k1 -1 -lo 0.0 -hi 1.0
	$(GO) run ./cmd/auditcheck -dir audit_overload -seed 5 -tamper 200
	rm -rf audit_chaos audit_overload audit_chaos.trace.jsonl

# Trace tier: smoke the flight recorder end to end. A seeded overload run
# with forced governor shedding writes its JSONL post-mortem twice — once
# with -workers 1, once with -workers 4 — the two dumps must be
# byte-identical (the tracing determinism contract), and cmd/tracecheck
# validates the wire schema (known event types, hex IDs, per-component
# seq monotonicity, header/body consistency).
trace:
	$(GO) run ./cmd/cluster -overload -governor -redundancy 2 \
		-sessions 1500 -epochs 5 -burstfactor 1.8 -burstprob 0.5 \
		-basejitter 0.05 -probes 500 -seed 5 \
		-trace trace_w1.jsonl -workers 1 >/dev/null
	$(GO) run ./cmd/cluster -overload -governor -redundancy 2 \
		-sessions 1500 -epochs 5 -burstfactor 1.8 -burstprob 0.5 \
		-basejitter 0.05 -probes 500 -seed 5 \
		-trace trace_w4.jsonl -workers 4 >/dev/null
	cmp trace_w1.jsonl trace_w4.jsonl
	$(GO) run ./cmd/tracecheck trace_w1.jsonl trace_w4.jsonl
	rm -f trace_w1.jsonl trace_w4.jsonl
