GO ?= go

.PHONY: check race bench vet test build

# Tier-1 verification: everything must build, vet cleanly, and the full
# test suite pass.
check: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: vet plus the full suite under the race detector. The parallel
# determinism tests (Workers: 4 against Workers: 1) run their worker pools
# here, so data races in the sharded engine, the solver sweep, or the
# experiment grids are caught even on single-core hosts. The chaos and
# cluster packages rerun uncached (-count=1): they exercise real TCP,
# per-agent fault streams, and the gate/outage machinery, where fresh
# scheduling each run is the point.
race: vet
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/chaos/ ./internal/cluster/

# Bench tier: every figure/table benchmark plus the obs micro-benchmarks,
# with allocation reporting. Also replays the quick experiment suite with a
# live registry and leaves its metrics snapshot in BENCH_obs.json — solver
# pivot counts, rounding trials, emulation wall time — as a machine-readable
# profile of the run.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -bench=. -benchmem ./internal/obs/
	$(GO) test -bench=ClusterConverge -benchmem ./internal/cluster/
	$(GO) run ./cmd/experiments -quick -metrics BENCH_obs.json >/dev/null
	$(GO) run ./cmd/cluster -sessions 2000 -epochs 6 -metrics BENCH_cluster.json >/dev/null
