package nwdeploy

import (
	"testing"
)

// TestPublicAPINIDS exercises the facade end-to-end the way README's
// quickstart does.
func TestPublicAPINIDS(t *testing.T) {
	topo := Internet2()
	tm := GravityMatrix(topo)
	sessions := GenerateSessions(topo, tm, 3000, 1)
	classes := []Class{
		{Name: "signature", CPUPerPkt: 1, MemPerItem: 400},
		{Name: "http", Ports: []uint16{80}, CPUPerPkt: 2, MemPerItem: 600},
	}
	inst, err := BuildNIDSInstance(topo, classes, sessions, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanNIDS(inst, NIDSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Objective <= 0 {
		t.Fatalf("objective %v", plan.Objective)
	}
	h := Hasher{Key: 1}
	analyzed := 0
	for _, s := range sessions[:100] {
		for node := 0; node < topo.N(); node++ {
			if plan.ShouldAnalyze(node, 0, s, h) {
				analyzed++
			}
		}
	}
	if analyzed != 100 {
		t.Fatalf("signature class analyzed %d/100 sessions, want exactly-once coverage", analyzed)
	}
}

func TestPublicAPINIPS(t *testing.T) {
	topo := Geant()
	inst := BuildNIPSInstance(topo, UnitRules(10), NIPSConfig{
		MaxPaths:             10,
		RuleCapacityFraction: 0.2,
		MatchSeed:            5,
	})
	res, err := PlanNIPS(inst, NIPSOptions{Variant: NIPSRoundingGreedyLP, Iters: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dep, optLP := res.Deployment, res.LPBound
	if dep.Objective <= 0 || optLP < dep.Objective-1e-6 {
		t.Fatalf("objective %v vs OptLP %v", dep.Objective, optLP)
	}
	if res.Gap < 0 || res.Gap > 1 {
		t.Fatalf("gap %v outside [0, 1]", res.Gap)
	}
	if res.Stats.Iterations != 3 || res.Stats.Trials < 3 {
		t.Fatalf("stats %+v, want 3 iterations and >= 3 trials", res.Stats)
	}
	if err := dep.Verify(inst); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIAdaptive(t *testing.T) {
	topo := Internet2()
	inst := BuildNIPSInstance(topo, UnitRules(4), NIPSConfig{
		MaxPaths:             6,
		RuleCapacityFraction: 1,
		MatchSeed:            2,
	})
	ad := NewAdaptiveNIPS(inst, AdaptiveOptions{Horizon: 20, MaxDrop: 0.01, Seed: 3})
	if _, err := ad.Decide(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExtensions(t *testing.T) {
	topo := Internet2()
	tm := GravityMatrix(topo)
	sessions := GenerateSessions(topo, tm, 2000, 6)
	classes := []Class{
		{Name: "signature", CPUPerPkt: 1, MemPerItem: 400},
	}
	inst, err := BuildNIDSInstance(topo, classes, sessions, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}

	// Greedy baseline is never better than the LP.
	greedy := GreedyNIDSPlan(inst)
	lpPlan, err := PlanNIDS(inst, NIDSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lpPlan.Objective > greedy.Objective+1e-9 {
		t.Fatalf("LP %v worse than greedy %v", lpPlan.Objective, greedy.Objective)
	}

	// What-if provisioning runs and is sorted.
	ups, err := WhatIfUpgrades(inst, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2*topo.N() {
		t.Fatalf("got %d upgrade options", len(ups))
	}

	// Transition between two workloads of the same network: no transfers.
	sessions2 := GenerateSessions(topo, tm, 2500, 7)
	inst2, err := BuildNIDSInstance(topo, classes, sessions2, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := PlanNIDS(inst2, NIDSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := PlanTransition(lpPlan, plan2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Transfers) != 0 {
		t.Fatalf("unexpected transfers without routing change: %d", len(tr.Transfers))
	}

	// Aggregation-budgeted planning with a loose budget matches plain.
	aggPlan, err := PlanNIDSWithAggregation(inst, 1, AggregationConfig{Collector: 6, BytesPerItem: 64, Budget: 1e18})
	if err != nil {
		t.Fatal(err)
	}
	if aggPlan.Objective > lpPlan.Objective*(1+1e-6) {
		t.Fatalf("loose aggregation budget worsened objective: %v vs %v", aggPlan.Objective, lpPlan.Objective)
	}

	// Exact NIPS on a tiny instance bounds the approximation.
	ninst := BuildNIPSInstance(topo, UnitRules(2), NIPSConfig{MaxPaths: 4, RuleCapacityFraction: 0.5, MatchSeed: 1})
	exact, err := SolveNIPSExact(ninst)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := PlanNIPS(ninst, NIPSOptions{Variant: NIPSRoundingGreedyLP, Iters: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if nres.Deployment.Objective > exact.Objective+1e-6 {
		t.Fatalf("approximation %v beat exact %v", nres.Deployment.Objective, exact.Objective)
	}
}
