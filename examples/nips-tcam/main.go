// NIPS with TCAM budgets: reproduce one cell of the paper's Figure 10 on
// the Geant backbone — solve the LP relaxation, run the three rounding
// variants, and verify the best deployment in a flow-level data plane.
//
//	go run ./examples/nips-tcam [-rules 20] [-capfrac 0.15]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"nwdeploy/internal/nips"
	"nwdeploy/internal/topology"
)

func main() {
	log.SetFlags(0)
	rules := flag.Int("rules", 20, "number of NIPS rules")
	capFrac := flag.Float64("capfrac", 0.15, "TCAM slots per node as a fraction of the rule count")
	paths := flag.Int("paths", 15, "heaviest gravity paths to model")
	flag.Parse()

	topo := topology.Geant()
	inst := nips.NewInstance(topo, nips.UnitRules(*rules), nips.Config{
		MaxPaths:             *paths,
		RuleCapacityFraction: *capFrac,
		MatchSeed:            99,
	})
	fmt.Printf("topology=%s rules=%d paths=%d TCAM/node=%.1f slots\n",
		topo.Name, *rules, len(inst.Paths), inst.CamCap[0])

	rel, err := nips.SolveRelaxation(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP relaxation upper bound OptLP = %.5g (%d simplex iterations)\n\n", rel.Objective, rel.Iters)

	var best *nips.Deployment
	for _, v := range []nips.Variant{nips.VariantBasic, nips.VariantRoundLP, nips.VariantRoundGreedyLP} {
		dep, err := nips.SolveFromRelaxation(inst, rel, nips.SolveOptions{Variant: v, Iters: 5, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if err := dep.Verify(inst); err != nil {
			log.Fatalf("%v produced an infeasible deployment: %v", v, err)
		}
		fmt.Printf("%-22s objective %.5g = %.3f of OptLP\n", v, dep.Objective, dep.Objective/rel.Objective)
		best = dep
	}

	// Exercise the best deployment in a flow-level data plane: hash-based
	// sampling drops unwanted flows at the assigned nodes; the measured
	// footprint reduction matches the optimizer's objective.
	sim := nips.SimulateDrops(inst, best, 50, rand.New(rand.NewSource(2)))
	fmt.Printf("\ndata-plane check over %d simulated unwanted flows:\n", sim.Flows)
	fmt.Printf("  predicted footprint reduction  %.5g\n", sim.Predicted)
	fmt.Printf("  measured footprint reduction   %.5g (%.1f%% of total unwanted footprint)\n",
		sim.Measured, 100*sim.Measured/sim.TotalFootprint)
}
