// Handover: the paper's Section 5 operational concerns, end to end. A
// link is added to the network, shortest paths move, and the re-optimized
// plan leaves some nodes holding connection state for traffic they can no
// longer see. PlanTransition computes what each node retains during the
// drain window and which hash ranges of live state must migrate — then a
// what-if analysis answers where extra capacity would help most.
//
//	go run ./examples/handover
package main

import (
	"fmt"
	"log"

	"nwdeploy/internal/core"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func buildTopo(shortcut bool) *topology.Topology {
	nodes := []topology.Node{
		{ID: 0, Name: "A", City: "west-gw", Population: 3e6, Lat: 37, Lon: -122},
		{ID: 1, Name: "B", City: "core-1", Population: 5e5, Lat: 39, Lon: -110},
		{ID: 2, Name: "C", City: "core-2", Population: 5e5, Lat: 40, Lon: -95},
		{ID: 3, Name: "D", City: "east-gw", Population: 4e6, Lat: 41, Lon: -74},
		{ID: 4, Name: "E", City: "south-gw", Population: 2e6, Lat: 30, Lon: -90},
	}
	t := topology.New("handover-demo", nodes)
	t.AddLink(0, 1, 10)
	t.AddLink(1, 2, 10)
	t.AddLink(2, 3, 10)
	t.AddLink(2, 4, 8)
	if shortcut {
		t.AddLink(0, 3, 12) // new express link: A<->D no longer crosses B, C
	}
	return t
}

func main() {
	log.SetFlags(0)
	classes := []core.Class{
		{Name: "signature", Scope: core.PerPath, Agg: core.BySession, CPUPerPkt: 1, MemPerItem: 400},
		{Name: "scan", Scope: core.PerIngress, Agg: core.BySource, CPUPerPkt: 0.3, MemPerItem: 120},
	}
	caps := core.UniformCaps(5, 1e6, 1e9)

	before := buildTopo(false)
	after := buildTopo(true)
	tm := traffic.Gravity(before)
	sessions := traffic.Generate(before, tm, traffic.GenConfig{Sessions: 4000, Seed: 3})

	oldInst, err := core.BuildInstance(before, classes, sessions, caps)
	if err != nil {
		log.Fatal(err)
	}
	oldPlan, err := core.Solve(oldInst, 1)
	if err != nil {
		log.Fatal(err)
	}
	newInst, err := core.BuildInstance(after, classes, sessions, caps)
	if err != nil {
		log.Fatal(err)
	}
	newPlan, err := core.Solve(newInst, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: max load %.4f   after new A-D link: max load %.4f\n\n",
		oldPlan.Objective, newPlan.Objective)

	tr, err := core.PlanTransition(oldPlan, newPlan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transition: %d retained assignments (drain window), %d state transfers (%.3f hash-space width)\n",
		len(tr.Retentions), len(tr.Transfers), tr.TransferredWidth())
	for _, x := range tr.Transfers {
		fmt.Printf("  class=%s unit=%v migrate %v from %s to %s\n",
			classes[x.Class].Name, x.Unit, x.Range,
			before.Nodes[x.From].Name, before.Nodes[x.To].Name)
	}

	// Where would more hardware help now?
	ups, err := core.WhatIfUpgrades(newInst, 1, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhat-if: doubling one node's capacity")
	for _, u := range ups[:3] {
		fmt.Printf("  node %s %s: objective %.4f (gain %.4f)\n",
			after.Nodes[u.Node].Name, u.Resource, u.Objective, u.Gain)
	}
}
