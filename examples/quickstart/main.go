// Quickstart: plan a coordinated NIDS deployment on a four-node toy
// network and watch the sampling manifests divide the work.
//
//	go run ./examples/quickstart
//
// The scenario mirrors the paper's Figure 1: a line network where
// signature analysis can run anywhere on a packet's path, while scan
// detection is pinned to each host's ingress. The LP balances the load;
// the manifests assign non-overlapping hash ranges; and replaying the
// traffic shows every session analyzed exactly once per class.
package main

import (
	"fmt"
	"log"

	"nwdeploy"
	"nwdeploy/internal/topology"
)

func main() {
	log.SetFlags(0)

	// A small diamond network: two gateways (A, D) joined through two core
	// routers (B, C).
	nodes := []nwdeploy.Node{
		{ID: 0, Name: "A", City: "gateway-west", Population: 1e6, Lat: 37, Lon: -122},
		{ID: 1, Name: "B", City: "core-1", Population: 2e5, Lat: 39, Lon: -105},
		{ID: 2, Name: "C", City: "core-2", Population: 2e5, Lat: 41, Lon: -95},
		{ID: 3, Name: "D", City: "gateway-east", Population: 1.2e6, Lat: 40, Lon: -74},
	}
	topo := topology.New("diamond", nodes)
	topo.AddLinkAuto(0, 1)
	topo.AddLinkAuto(1, 2)
	topo.AddLinkAuto(2, 3)
	topo.AddLinkAuto(0, 2)

	// Two analysis classes, as in Figure 1: path-agnostic signature
	// matching and ingress-pinned scan detection.
	classes := []nwdeploy.Class{
		{Name: "signature", CPUPerPkt: 1.0, MemPerItem: 400},
		{Name: "scan", Scope: nwdeploy.PerIngress, Agg: nwdeploy.BySource, CPUPerPkt: 0.3, MemPerItem: 120},
	}

	tm := nwdeploy.GravityMatrix(topo)
	sessions := nwdeploy.GenerateSessions(topo, tm, 5000, 42)

	inst, err := nwdeploy.BuildNIDSInstance(topo, classes, sessions, nwdeploy.UniformCaps(topo.N(), 1e6, 1e8))
	if err != nil {
		log.Fatal(err)
	}
	metrics := nwdeploy.NewMetrics()
	plan, err := nwdeploy.PlanNIDS(inst, nwdeploy.NIDSOptions{Metrics: metrics})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved NIDS LP: %d units, objective (min max load) = %.4f\n",
		len(inst.Units), plan.Objective)
	fmt.Printf("simplex pivots: %d phase-1 + %d phase-2 (from the metrics registry: %d LP solves)\n",
		plan.Stats.Phase1Iters, plan.Stats.Phase2Iters,
		metrics.Counter("lp.solves").Value())

	// Show one unit's hash-range split.
	for ui, u := range inst.Units {
		if inst.Classes[u.Class].Name != "signature" || len(u.Nodes) < 3 {
			continue
		}
		fmt.Printf("\nsignature unit for pair %v splits across its path:\n", u.Key)
		for _, node := range u.Nodes {
			rs := plan.Manifests[node].Ranges[ui]
			fmt.Printf("  node %s analyzes hash ranges %v (share %.3f)\n",
				topo.Nodes[node].Name, rs, rs.Width())
		}
		break
	}

	// Replay traffic through the Figure 3 check: exactly-once coverage.
	h := nwdeploy.Hasher{Key: 7}
	perNode := make([]int, topo.N())
	for _, s := range sessions {
		for ci := range classes {
			for node := 0; node < topo.N(); node++ {
				if plan.ShouldAnalyze(node, ci, s, h) {
					perNode[node]++
				}
			}
		}
	}
	fmt.Println("\nanalysis assignments replayed from the manifests:")
	total := 0
	for j, n := range perNode {
		fmt.Printf("  node %s handles %d session-class analyses\n", topo.Nodes[j].Name, n)
		total += n
	}
	fmt.Printf("total = %d (signature %d + scan %d: every session exactly once per class)\n",
		total, len(sessions), len(sessions))
}
