// Controller: the operational loop the paper envisions — a centralized
// operations center periodically re-optimizes NIDS responsibilities and
// distributes hash-range sampling manifests to node agents, which enforce
// them on a live connection-tracked data path.
//
//	go run ./examples/controller
//
// The demo starts a TCP controller, one agent per Internet2 node, replays
// a synthetic trace through each node's connection table and wire-form
// decider, then simulates a traffic shift: the controller re-solves the LP
// and bumps the epoch, the agents notice on their next poll and refetch,
// and the new assignment takes effect — no planner code on the nodes.
package main

import (
	"fmt"
	"log"
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/conntrack"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func main() {
	log.SetFlags(0)
	topo := topology.Internet2()
	classes := bro.Classes(bro.StandardModules()[1:])
	caps := core.UniformCaps(topo.N(), 1e7, 1e9)

	solve := func(seed int64, sessions int) (*core.Plan, []traffic.Session) {
		tm := traffic.Gravity(topo)
		trace := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: sessions, Seed: seed})
		inst, err := core.BuildInstance(topo, classes, trace, caps)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := core.Solve(inst, 1)
		if err != nil {
			log.Fatal(err)
		}
		return plan, trace
	}

	const hashKey = 0xfeedface
	ctrl, err := control.NewController("127.0.0.1:0", hashKey)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	fmt.Printf("controller listening on %s\n", ctrl.Addr())

	plan, trace := solve(1, 6000)
	ctrl.UpdatePlan(plan)
	fmt.Printf("installed plan epoch=1: objective %.4f over %d units\n\n",
		plan.Objective, len(plan.Inst.Units))

	// One agent + connection table per node.
	agents := make([]*control.Agent, topo.N())
	tables := make([]*conntrack.Table, topo.N())
	for j := range agents {
		agents[j] = control.NewAgent(ctrl.Addr(), j)
		if _, err := agents[j].Subscribe(control.SubscribeOptions{Mode: control.ModeOnce}); err != nil {
			log.Fatal(err)
		}
		tables[j] = conntrack.New(conntrack.Config{
			IdleTimeout: 2 * time.Minute,
			MaxEntries:  100000,
			HashKey:     hashKey,
		})
	}

	// Replay the trace through every node's data path.
	replay := func(trace []traffic.Session) []int {
		analyzed := make([]int, topo.N())
		paths := topo.PathMatrix()
		now := time.Now()
		for _, s := range trace {
			now = now.Add(10 * time.Millisecond)
			for _, node := range paths[s.Src][s.Dst] {
				tables[node].Update(s.Tuple, now, s.Packets, s.Bytes)
				d := agents[node].Decider()
				for ci := range classes {
					if d.ShouldAnalyze(ci, s) {
						analyzed[node]++
					}
				}
			}
		}
		return analyzed
	}

	analyzed := replay(trace)
	fmt.Println("epoch 1 data path (per-node session-class analyses, conn-table peaks):")
	for j, n := range analyzed {
		st := tables[j].Stats()
		fmt.Printf("  %-15s analyses=%-6d conns: created=%d peak=%d evicted=%d\n",
			topo.Nodes[j].City, n, st.Created, st.PeakEntries, st.Evicted)
	}

	// Traffic shifts: re-optimize and redistribute.
	plan2, trace2 := solve(2, 9000)
	ctrl.UpdatePlan(plan2)
	refetched := 0
	for _, a := range agents {
		// Delta subscription: the agents state the epoch they hold and
		// receive only the changed ranges (v2 wire protocol).
		sub, err := a.Subscribe(control.SubscribeOptions{Mode: control.ModeIfStale, Deltas: true})
		if err != nil {
			log.Fatal(err)
		}
		if sub.Last().Changed {
			refetched++
		}
	}
	fmt.Printf("\ntraffic shifted; controller re-solved (epoch 2), %d/%d agents refetched\n",
		refetched, len(agents))

	analyzed2 := replay(trace2)
	total := 0
	for _, n := range analyzed2 {
		total += n
	}
	fmt.Printf("epoch 2 data path: %d total analyses across %d nodes (epoch on node 0: %d)\n",
		total, topo.N(), agents[0].Decider().Epoch())
}
