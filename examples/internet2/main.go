// Internet2: the paper's headline network-wide NIDS evaluation in
// miniature (Figures 6-8). A 21-module Bro-like deployment is emulated on
// the 11-node Internet2 backbone twice — once edge-only, once coordinated —
// and the per-node footprints are compared.
//
//	go run ./examples/internet2 [-sessions 20000]
package main

import (
	"flag"
	"fmt"
	"log"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/core"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func main() {
	log.SetFlags(0)
	sessions := flag.Int("sessions", 20000, "total traffic volume in sessions")
	flag.Parse()

	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	// A small host pool per node makes per-source behaviour (scan
	// detection) visible at this trace size.
	trace := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: *sessions, Seed: 2010, HostsPerNode: 12})

	// 21 deployable modules: the standard Figure 5 set plus duplicated
	// HTTP/IRC/Login/TFTP instances, exactly as the paper grows the
	// deployment (the baseline pseudo-module is connection processing,
	// which the engine performs inherently).
	mods := bro.ModuleSubset(22)[1:]

	em, err := bro.NewEmulation(topo, mods, trace, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulating %d modules x %d sessions on %s (%d nodes)\n",
		len(mods), *sessions, topo.Name, topo.N())
	fmt.Printf("placement LP objective = %.4f (%d simplex iterations)\n\n",
		em.Plan.Objective, em.Plan.SolverIters)

	edge := em.Run(bro.DeployEdge)
	coord := em.Run(bro.DeployCoordinated)

	fmt.Println("node  city            edge_cpu      coord_cpu     edge_mem      coord_mem")
	for j := 0; j < topo.N(); j++ {
		e, c := edge.Reports[j], coord.Reports[j]
		fmt.Printf("%-5d %-15s %-13.4g %-13.4g %-13.4g %-13.4g\n",
			j, topo.Nodes[j].City, e.CPUUnits, c.CPUUnits, e.MemBytes, c.MemBytes)
	}

	fmt.Printf("\nmax per-node CPU:    edge %.4g  coordinated %.4g  (%.0f%% reduction)\n",
		edge.MaxCPU(), coord.MaxCPU(), 100*(1-coord.MaxCPU()/edge.MaxCPU()))
	fmt.Printf("max per-node memory: edge %.4g  coordinated %.4g  (%.0f%% reduction)\n",
		edge.MaxMem(), coord.MaxMem(), 100*(1-coord.MaxMem()/edge.MaxMem()))
	fmt.Printf("aggregate alerts:    edge %d  coordinated %d (detection coverage preserved)\n",
		edge.TotalAlerts(), coord.TotalAlerts())
}
