// Adaptive NIPS: the paper's Section 3.5 online-learning experiment
// (Figure 11). An adversary redraws the unwanted-traffic mix every epoch;
// the follow-the-perturbed-leader deployer adapts using only the history,
// and its normalized regret against the best static deployment in
// hindsight shrinks toward zero.
//
//	go run ./examples/adaptive [-epochs 300]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"nwdeploy/internal/nips"
	"nwdeploy/internal/online"
	"nwdeploy/internal/topology"
)

func main() {
	log.SetFlags(0)
	epochs := flag.Int("epochs", 300, "adaptation horizon")
	flag.Parse()

	inst := nips.NewInstance(topology.Internet2(), nips.UnitRules(6), nips.Config{
		MaxPaths:             10,
		RuleCapacityFraction: 1, // Section 3.5 drops the TCAM constraints
		MatchSeed:            7,
	})
	series, err := online.Run(inst, online.RunConfig{
		Epochs:      *epochs,
		SampleEvery: *epochs / 15,
		Seed:        2010,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FPL adaptation over %d epochs (negative regret = online beat the best static choice)\n\n", *epochs)
	fmt.Println("epoch   normalized regret")
	for _, pt := range series {
		bar := ""
		width := int(pt.Normalized * 200)
		switch {
		case width > 0:
			bar = strings.Repeat("+", min(width, 40))
		case width < 0:
			bar = strings.Repeat("-", min(-width, 40))
		}
		fmt.Printf("%5d   %+.4f  %s\n", pt.Epoch, pt.Normalized, bar)
	}
	final := series[len(series)-1].Normalized
	fmt.Printf("\nfinal normalized regret: %+.4f (paper: within 15%% of the hindsight optimum)\n", final)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
