package nwdeploy

import (
	"reflect"
	"testing"
	"time"

	"nwdeploy/internal/chaos"
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/control"
	"nwdeploy/internal/trace"
)

// The observability contract of the public surface: a live Metrics
// registry is write-only instrumentation, so every planner must return
// byte-identical results with and without one. These tests are the
// acceptance gate for any new instrumentation — if a counter ever leaks
// into a returned struct through a non-deterministic path (wall time,
// scheduling), they fail.

func nidsTestInstance(t *testing.T) *NIDSInstance {
	t.Helper()
	topo := Internet2()
	tm := GravityMatrix(topo)
	sessions := GenerateSessions(topo, tm, 3000, 13)
	classes := []Class{
		{Name: "signature", CPUPerPkt: 1, MemPerItem: 400},
		{Name: "http", Ports: []uint16{80}, CPUPerPkt: 2, MemPerItem: 600},
	}
	inst, err := BuildNIDSInstance(topo, classes, sessions, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPlanNIDSMetricsNonInterference(t *testing.T) {
	inst := nidsTestInstance(t)
	plain, err := PlanNIDS(inst, NIDSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	live, err := PlanNIDS(inst, NIDSOptions{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, live) {
		t.Fatal("live registry changed the NIDS plan")
	}
	if m.Counter("lp.solves").Value() == 0 {
		t.Fatal("registry recorded no LP solves; instrumentation dead")
	}
	if plain.Stats.Phase1Iters+plain.Stats.Phase2Iters == 0 {
		t.Fatal("plan carries no solver stats")
	}

	// The aggregation path must honor the same contract.
	agg := AggregationConfig{Collector: 6, BytesPerItem: 64, Budget: 1e18}
	plainAgg, err := PlanNIDS(inst, NIDSOptions{Aggregation: &agg})
	if err != nil {
		t.Fatal(err)
	}
	liveAgg, err := PlanNIDS(inst, NIDSOptions{Aggregation: &agg, Metrics: NewMetrics()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainAgg, liveAgg) {
		t.Fatal("live registry changed the aggregation-budgeted plan")
	}
}

func TestPlanNIPSMetricsNonInterference(t *testing.T) {
	inst := BuildNIPSInstance(Geant(), UnitRules(10), NIPSConfig{
		MaxPaths:             10,
		RuleCapacityFraction: 0.2,
		MatchSeed:            5,
	})
	opts := NIPSOptions{Variant: NIPSRoundingGreedyLP, Iters: 3, Seed: 11}
	plain, err := PlanNIPS(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	opts.Metrics = m
	live, err := PlanNIPS(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, live) {
		t.Fatal("live registry changed the NIPS result")
	}
	if m.Counter("nips.round_trials").Value() == 0 {
		t.Fatal("registry recorded no rounding trials; instrumentation dead")
	}

	// The same seed must also survive a Workers change with metrics on.
	opts.Workers = 4
	opts.Metrics = NewMetrics()
	parallel, err := PlanNIPS(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, parallel) {
		t.Fatal("parallel instrumented run diverged from the serial plain run")
	}
}

// TestDeprecatedWrappersAgree pins the compatibility contract: the old
// positional entry points must return exactly what the options-struct
// forms do.
func TestDeprecatedWrappersAgree(t *testing.T) {
	inst := nidsTestInstance(t)
	viaOpts, err := PlanNIDS(inst, NIDSOptions{Redundancy: 1})
	if err != nil {
		t.Fatal(err)
	}
	viaWrapper, err := PlanNIDSWithRedundancy(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaOpts, viaWrapper) {
		t.Fatal("PlanNIDSWithRedundancy diverged from PlanNIDS")
	}

	ninst := BuildNIPSInstance(Internet2(), UnitRules(6), NIPSConfig{
		MaxPaths:             6,
		RuleCapacityFraction: 0.3,
		MatchSeed:            9,
	})
	res, err := PlanNIPS(ninst, NIPSOptions{Variant: NIPSRoundingLP, Iters: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	dep, bound, err := PlanNIPSWithVariant(ninst, NIPSRoundingLP, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Deployment, dep) || res.LPBound != bound {
		t.Fatal("PlanNIPSWithVariant diverged from PlanNIPS")
	}

	if ad := NewAdaptiveNIPSWithHorizon(ninst, 10, 0.01, 4); ad == nil {
		t.Fatal("NewAdaptiveNIPSWithHorizon returned nil")
	}
}

// TestTracerNonInterference extends the write-only contract to the trace
// layer: a live flight recorder threaded through the cluster runtime must
// not change a single field of the reports — the plans published, the
// per-epoch coverage, the watchdog's view of the world — while still
// recording the run.
func TestTracerNonInterference(t *testing.T) {
	run := func(tr *trace.Tracer) *cluster.ChaosReport {
		rep, err := cluster.CoverageUnderChaos(cluster.ChaosConfig{
			Sessions: 600, Epochs: 3, Seed: 17, Probes: 300,
			Faults: chaos.NetworkFaults{DropProb: 0.25, BlackholeProb: 0.1},
			Retry: cluster.RetryPolicy{
				MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
			},
			Agent: control.AgentOptions{
				DialTimeout: 100 * time.Millisecond, RPCTimeout: 100 * time.Millisecond,
			},
			Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(nil)
	tr := trace.New(trace.Options{Seed: 17})
	traced := run(tr)
	if !reflect.DeepEqual(plain, traced) {
		t.Fatal("live tracer changed the chaos report")
	}
	if emitted, _ := tr.Stats(); emitted == 0 {
		t.Fatal("tracer recorded no events; instrumentation dead")
	}

	over := func(tr *trace.Tracer) *cluster.OverloadReport {
		rep, err := cluster.RunOverload(cluster.OverloadConfig{
			Sessions: 1200, Epochs: 3, Seed: 17, Governor: true,
			BurstFactor: 1.8, BurstProb: 0.5, BaseJitter: 0.05,
			Probes: 300, Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plainOver := over(nil)
	tracedOver := over(trace.New(trace.Options{Seed: 17}))
	if !reflect.DeepEqual(plainOver, tracedOver) {
		t.Fatal("live tracer changed the overload report")
	}
}
