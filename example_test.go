package nwdeploy_test

import (
	"fmt"

	"nwdeploy"
)

// ExamplePlanNIDS plans a coordinated NIDS deployment on the Internet2
// backbone and shows the exactly-once coverage the manifests deliver.
func ExamplePlanNIDS() {
	topo := nwdeploy.Internet2()
	tm := nwdeploy.GravityMatrix(topo)
	sessions := nwdeploy.GenerateSessions(topo, tm, 2000, 7)

	classes := []nwdeploy.Class{
		{Name: "signature", CPUPerPkt: 1, MemPerItem: 400},
		{Name: "scan", Scope: nwdeploy.PerIngress, Agg: nwdeploy.BySource, CPUPerPkt: 0.3, MemPerItem: 120},
	}
	inst, err := nwdeploy.BuildNIDSInstance(topo, classes, sessions,
		nwdeploy.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	plan, err := nwdeploy.PlanNIDS(inst, nwdeploy.NIDSOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// Every session is analyzed by exactly one node per class.
	h := nwdeploy.Hasher{Key: 1}
	analysts := 0
	for _, s := range sessions[:500] {
		for node := 0; node < topo.N(); node++ {
			if plan.ShouldAnalyze(node, 0, s, h) {
				analysts++
			}
		}
	}
	fmt.Printf("signature analyses for 500 sessions: %d\n", analysts)
	fmt.Printf("coverage complete: %v\n", analysts == 500)
	// Output:
	// signature analyses for 500 sessions: 500
	// coverage complete: true
}

// ExamplePlanNIPS places filtering rules under TCAM budgets and reports
// how close the approximation lands to the LP upper bound.
func ExamplePlanNIPS() {
	inst := nwdeploy.BuildNIPSInstance(nwdeploy.Internet2(), nwdeploy.UnitRules(10),
		nwdeploy.NIPSConfig{
			MaxPaths:             10,
			RuleCapacityFraction: 0.2,
			MatchSeed:            5,
		})
	res, err := nwdeploy.PlanNIPS(inst, nwdeploy.NIPSOptions{
		Variant: nwdeploy.NIPSRoundingGreedyLP,
		Iters:   5,
		Seed:    3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dep := res.Deployment
	fmt.Printf("deployment feasible: %v\n", dep.Verify(inst) == nil)
	fmt.Printf("within 80%% of the LP bound: %v\n", dep.Objective >= 0.8*res.LPBound)
	// Output:
	// deployment feasible: true
	// within 80% of the LP bound: true
}

// ExampleWhatIfUpgrades asks where one hardware upgrade would reduce the
// deployment bottleneck.
func ExampleWhatIfUpgrades() {
	topo := nwdeploy.Internet2()
	tm := nwdeploy.GravityMatrix(topo)
	sessions := nwdeploy.GenerateSessions(topo, tm, 2000, 9)
	classes := []nwdeploy.Class{{Name: "signature", CPUPerPkt: 1, MemPerItem: 400}}
	inst, err := nwdeploy.BuildNIDSInstance(topo, classes, sessions,
		nwdeploy.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ups, err := nwdeploy.WhatIfUpgrades(inst, 1, 2.0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("options evaluated: %d\n", len(ups))
	fmt.Printf("sorted by gain: %v\n", ups[0].Gain >= ups[len(ups)-1].Gain)
	// Output:
	// options evaluated: 22
	// sorted by gain: true
}
